"""The shipped category schemas.

Mirrors the paper's evaluation inventory: the 8 Japanese categories of
Tables I–IV (tennis, kitchen, cosmetics, garden, shoes, ladies bags,
digital cameras, vacuum cleaner), ten further Japanese categories to
reach the paper's 18, the 3 German categories (§VII-B: mailbox, coffee
machines, garden), and the heterogeneity study's baby subcategories
(§VIII-E).

Per-category knobs are calibrated to the paper's reported corpus
properties: Table I seed coverage spans ~6% (Shoes) to ~39% (Ladies
Bags); Garden has the noisiest tables and thinnest descriptions; Vacuum
Cleaner's ``juryo`` (weight) mixes integer and decimal magnitudes (the
§VIII-A diversification case); Digital Cameras hosts the confusable
``yukogaso``/``sogaso`` (effective/total pixels) pair and composite
shutter-speed values.
"""

from __future__ import annotations

from ..errors import SchemaError
from .schema import (
    AttributeSpec,
    CategoricalValues,
    CategorySchema,
    CompositeValues,
    NumericValues,
)

# --- shared value pools (ja) -------------------------------------------

JA_BRANDS = (
    "Nikkon", "Sorex", "Hikari", "Yamado", "Kazeno", "Sakura",
    "Mitsuba", "Aoyama", "Fujita", "Kawado", "Tsubame", "Hoshino",
    "Kitamura", "Enishi", "Takumi", "Wakaba", "Kogane", "Shiranami",
    "Minamoto", "Harukaze", "Momiji", "Yukishiro", "Asahi", "Kurogane",
    "Tanpopo", "Hibari", "Suzuran", "Akatsuki",
)
JA_COLORS = (
    "kuro", "shiro", "aka", "ao", "gin", "pinku", "midori", "kiiro",
    "kon", "cha", "murasaki", "orenji", "beju", "guree",
    # Rarer compound shades — tail variants the seed usually misses,
    # learned only through bootstrap context (Figure 3's growth).
    "matto kuro", "tsuya kuro", "paaru shiro", "ofu howaito",
    "wain reddo", "sumoku guree", "raito guree", "daku buraun",
    "nebi", "mizuiro", "rozu pinku", "karashi iro",
)
JA_COUNTRIES = (
    "nihon", "chugoku", "doitsu", "amerika", "kankoku", "betonamu",
    "itaria", "furansu", "taiwan", "tai",
    "indo", "indoneshia", "porutogaru", "supein",
)
JA_MATERIALS = (
    "men", "kawa", "nairon", "porisuteru", "uru", "asa",
    "gosei kawa", "100 % men", "suteinresu", "arumi", "puraschikku",
    "garasu", "take", "hinoki",
    "hon kawa", "gosei hikaku", "kyanbasu", "suedo", "denimu",
    "rinen", "men kon", "uru kon",
)
JA_SHAPES = (
    "maru gata", "kaku gata", "hana gata", "hoshi gata", "daen gata",
    "haato gata",
    # Tail shapes rarely reach the seed; mis-tagging them from context
    # is the drift the semantic filter must catch (§VIII-B).
    "sakura gata", "yuki gata", "kumo gata", "ha gata",
    "tsubasa gata", "ichou gata",
)

# --- shared value pools (de) -------------------------------------------

DE_BRANDS = (
    "Hausmann", "Bergfeld", "Steinbach", "Waldner", "Krause",
    "Lindemann", "Falke", "Brandt", "Vogel", "Richter",
    "Moewe", "Tannberg", "Eichhorn", "Silberbach", "Nordwind",
    "Grünfeld", "Adlerhof", "Wetterstein", "Blumenthal", "Kranich",
)
DE_COLORS = (
    "schwarz", "weiß", "rot", "blau", "silber", "grün", "gelb",
    "braun", "grau", "beige", "anthrazit",
)
DE_MATERIALS = (
    "Edelstahl", "Kunststoff", "Aluminium", "Holz", "Glas", "Keramik",
    "verzinkter Stahl", "Bambus",
)


def _brand(aliases: tuple[str, ...] = ("meka", "seizomoto")) -> AttributeSpec:
    """The canonical ja brand attribute with its alias pair.

    The paper's motivating redundancy example is 製造元 (manufacturer)
    vs メーカー (maker); the alias pair reproduces it.
    """
    return AttributeSpec(
        name="burando",
        values=CategoricalValues(JA_BRANDS, zipf=1.0),
        aliases=aliases,
        presence_rate=0.95,
        table_rate=0.85,
        text_rate=0.45,
    )


def _color(
    text_rate: float = 0.6, aliases: tuple[str, ...] = ("karaa",)
) -> AttributeSpec:
    return AttributeSpec(
        name="iro",
        values=CategoricalValues(JA_COLORS),
        aliases=aliases,
        presence_rate=0.9,
        table_rate=0.8,
        text_rate=text_rate,
    )


def _origin() -> AttributeSpec:
    return AttributeSpec(
        name="gensanchi",
        values=CategoricalValues(JA_COUNTRIES),
        aliases=("seizankoku",),
        presence_rate=0.7,
        table_rate=0.75,
        text_rate=0.35,
    )


def _material(text_rate: float = 0.5) -> AttributeSpec:
    return AttributeSpec(
        name="sozai",
        values=CategoricalValues(JA_MATERIALS),
        aliases=("zaishitsu",),
        presence_rate=0.85,
        table_rate=0.8,
        text_rate=text_rate,
    )


_SCHEMAS: dict[str, CategorySchema] = {}


def _register(schema: CategorySchema) -> CategorySchema:
    if schema.name in _SCHEMAS:
        raise SchemaError(f"duplicate category name {schema.name!r}")
    _SCHEMAS[schema.name] = schema
    return schema


# --- the 8 core Japanese categories (Tables I-IV) ----------------------

_register(
    CategorySchema(
        name="tennis",
        locale="ja",
        title_nouns=("raketto", "tenisu shuzu", "gatto"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="juryo",
                values=NumericValues(250, 340, "g", decimal_rate=0.1, step=5),
                aliases=("omosa",),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="gurippu saizu",
                values=CategoricalValues(("G1", "G2", "G3", "G4", "G5")),
                presence_rate=0.8,
                table_rate=0.85,
                text_rate=0.4,
            ),
            _material(),
        ),
        table_coverage=0.28,
        bare_page_rate=0.3,
        table_noise_rate=0.02,
        table_variant_rate=0.01,
        filler_sentences=(2, 5),
    )
)

_register(
    CategorySchema(
        name="kitchen",
        locale="ja",
        title_nouns=("nabe", "furai pan", "hocho", "botoru"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="yoryo",
                values=NumericValues(1, 30, "l", decimal_rate=0.35),
                aliases=("naiyoryo",),
                presence_rate=0.75,
                table_rate=0.75,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="saizu",
                values=NumericValues(10, 45, "cm", decimal_rate=0.2),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.45,
            ),
            _material(),
        ),
        table_coverage=0.22,
        bare_page_rate=0.35,
        compact_spec_rate=0.25,
        table_noise_rate=0.1,
        table_variant_rate=0.05,
        filler_sentences=(2, 5),
    )
)

_register(
    CategorySchema(
        name="cosmetics",
        locale="ja",
        title_nouns=("kosume", "sukin kea yohin", "biyo seihin"),
        attributes=(
            _brand(),
            AttributeSpec(
                name="naiyoryo",
                values=NumericValues(10, 500, "ml", decimal_rate=0.15, step=5),
                aliases=("yoryo",),
                presence_rate=0.9,
                table_rate=0.85,
                text_rate=0.6,
            ),
            AttributeSpec(
                name="shurui",
                values=CategoricalValues(
                    (
                        "kurimu", "roshon", "serami", "jeru", "oiru",
                        "fomu", "masuku", "baamu", "essensu", "miruku",
                        "kurenjingu", "kesho sui", "biyoeki",
                    ),
                    zipf=0.9,
                ),
                aliases=("taipu",),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="seibun",
                values=CategoricalValues(
                    (
                        "hiaruron san", "korajen", "bitamin C", "seramaido",
                        "shia bataa", "yuzu ekisu", "retinooru",
                        "purasenta", "aloe ekisu", "hachimitsu",
                        "tsubaki oiru", "kome nuka ekisu",
                    ),
                    zipf=0.9,
                ),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.6,
            ),
            _origin(),
        ),
        table_coverage=0.38,
        bare_page_rate=0.12,
        table_noise_rate=0.02,
        table_variant_rate=0.06,
        filler_sentences=(2, 6),
        title_noun_attribute="shurui",
    )
)

_register(
    CategorySchema(
        name="garden",
        locale="ja",
        title_nouns=("puranta", "gaaden raito", "jyoro", "uekibachi"),
        attributes=(
            _color(text_rate=0.45),
            AttributeSpec(
                name="katachi",
                values=CategoricalValues(JA_SHAPES, zipf=1.0),
                presence_rate=0.7,
                table_rate=0.6,
                text_rate=0.45,
                confusable_with="iro",
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(1, 25, "kg", decimal_rate=0.3),
                aliases=("omosa",),
                presence_rate=0.8,
                table_rate=0.7,
                text_rate=0.45,
                confusable_with="taika juryo",
            ),
            AttributeSpec(
                name="taika juryo",
                values=NumericValues(5, 120, "kg", decimal_rate=0.1, step=5),
                presence_rate=0.5,
                table_rate=0.6,
                text_rate=0.35,
                confusable_with="juryo",
            ),
            _material(text_rate=0.4),
        ),
        table_coverage=0.1,
        bare_page_rate=0.4,
        compact_spec_rate=0.5,
        table_noise_rate=0.5,
        table_variant_rate=0.06,
        secondary_product_rate=0.08,
        negation_rate=0.05,
        markup_noise_rate=0.1,
        filler_sentences=(4, 8),
    )
)

_register(
    CategorySchema(
        name="shoes",
        locale="ja",
        title_nouns=("suniikaa", "buutsu", "pampusu", "sandaru"),
        attributes=(
            _brand(),
            _color(text_rate=0.65),
            AttributeSpec(
                name="saizu",
                values=NumericValues(22, 29, "cm", decimal_rate=0.5),
                presence_rate=0.95,
                table_rate=0.8,
                text_rate=0.55,
            ),
            _material(),
            AttributeSpec(
                name="haba",
                values=CategoricalValues(("2E", "3E", "4E", "D", "EE")),
                presence_rate=0.5,
                table_rate=0.6,
                text_rate=0.3,
            ),
        ),
        table_coverage=0.08,
        bare_page_rate=0.5,
        compact_spec_rate=0.3,
        table_noise_rate=0.1,
        table_variant_rate=0.06,
        secondary_product_rate=0.1,
        filler_sentences=(3, 6),
    )
)

_register(
    CategorySchema(
        name="ladies_bags",
        locale="ja",
        title_nouns=("redisu baggu", "kaban", "baggu"),
        attributes=(
            _brand(),
            _color(text_rate=0.7),
            _material(text_rate=0.6),
            AttributeSpec(
                name="saizu",
                values=NumericValues(18, 50, "cm", decimal_rate=0.15),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.45,
            ),
            _origin(),
            AttributeSpec(
                name="shurui",
                values=CategoricalValues(
                    (
                        "tooto", "shorudaa", "kurachi", "bosuton",
                        "ryukku", "hando", "poshetto", "kurosubodi",
                        "uesuto poochi", "semi shorudaa",
                    ),
                    zipf=0.9,
                ),
                presence_rate=0.85,
                table_rate=0.75,
                text_rate=0.5,
            ),
        ),
        table_coverage=0.42,
        bare_page_rate=0.12,
        table_noise_rate=0.015,
        table_variant_rate=0.015,
        filler_sentences=(2, 5),
        title_noun_attribute="shurui",
        title_noun_suffix=" baggu",
    )
)

_register(
    CategorySchema(
        name="digital_cameras",
        locale="ja",
        title_nouns=("dejitaru kamera", "mirareresu kamera", "konpakuto kamera"),
        attributes=(
            _brand(aliases=("meka",)),
            AttributeSpec(
                name="yukogaso",
                values=NumericValues(
                    1000, 6100, "gaso", thousands_rate=0.5, step=10
                ),
                presence_rate=0.9,
                table_rate=0.85,
                text_rate=0.55,
                confusable_with="sogaso",
            ),
            AttributeSpec(
                name="sogaso",
                values=NumericValues(
                    1100, 6500, "gaso", thousands_rate=0.5, step=10
                ),
                presence_rate=0.6,
                table_rate=0.7,
                text_rate=0.35,
                confusable_with="yukogaso",
            ),
            AttributeSpec(
                name="shatta supido",
                values=CompositeValues(
                    (
                        "1/{n} byo",
                        "1/{n} byo ~ 30 byo",
                        "1/{n} byo ~ {m} byo",
                        "{m} byo",
                    ),
                    low=1,
                    high=8000,
                ),
                presence_rate=0.55,
                table_rate=0.7,
                text_rate=0.3,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(90, 900, "g", decimal_rate=0.1, step=5),
                aliases=("omosa",),
                presence_rate=0.8,
                table_rate=0.8,
                text_rate=0.4,
            ),
            AttributeSpec(
                name="kogaku zumu",
                values=CompositeValues(("{n} bai",), low=2, high=60),
                presence_rate=0.6,
                table_rate=0.7,
                text_rate=0.35,
                confusable_with="dejitaru zumu",
            ),
            AttributeSpec(
                name="dejitaru zumu",
                values=CompositeValues(("{n} bai",), low=2, high=16),
                presence_rate=0.45,
                table_rate=0.6,
                text_rate=0.25,
                confusable_with="kogaku zumu",
            ),
        ),
        table_coverage=0.15,
        bare_page_rate=0.12,
        table_noise_rate=0.01,
        table_variant_rate=0.005,
        filler_sentences=(2, 5),
    )
)

_register(
    CategorySchema(
        name="vacuum_cleaner",
        locale="ja",
        title_nouns=("sojiki", "kurinaa"),
        attributes=(
            _brand(),
            AttributeSpec(
                name="taipu",
                values=CategoricalValues(
                    (
                        "kyanisuta", "suthikku", "robotto", "handi",
                        "futon kurinaa", "kyanisuta gata", "suthikku gata",
                        "robotto gata", "kodoresu suthikku",
                        "saikuron suthikku", "2way suthikku", "handi gata",
                    ),
                    zipf=0.9,
                ),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.5,
                confusable_with="dengen hoshiki",
            ),
            AttributeSpec(
                name="shujin hoshiki",
                values=CategoricalValues(
                    (
                        "saikuron shiki", "kami pakku shiki",
                        "kapuseru shiki", "saikuron", "kami pakku",
                        "dasuto kappu shiki", "hybrid shiki",
                    ),
                    zipf=0.9,
                ),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.4,
            ),
            AttributeSpec(
                name="dengen hoshiki",
                values=CategoricalValues(
                    (
                        "koodo shiki", "koodoresu", "juden shiki",
                        "dengen 2way", "koodoresu shiki", "juden gata",
                        "batteri shiki",
                    ),
                    zipf=0.9,
                ),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.4,
                confusable_with="taipu",
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(1, 8, "kg", decimal_rate=0.35),
                aliases=("omosa", "honntai juryo"),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="kyuin shigoto ritsu",
                values=NumericValues(50, 620, "w", step=10),
                presence_rate=0.65,
                table_rate=0.7,
                text_rate=0.35,
            ),
        ),
        table_coverage=0.3,
        bare_page_rate=0.18,
        table_noise_rate=0.06,
        table_variant_rate=0.03,
        filler_sentences=(2, 5),
        title_noun_attribute="taipu",
        title_noun_suffix=" sojiki",
    )
)

# --- ten further Japanese categories (to the paper's 18) ---------------

_register(
    CategorySchema(
        name="rings",
        locale="ja",
        title_nouns=("yubiwa", "ringu"),
        attributes=(
            _brand(aliases=("meka",)),
            AttributeSpec(
                name="nagasa",
                values=NumericValues(2, 30, "mm", decimal_rate=0.3),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
                confusable_with="haba",
            ),
            AttributeSpec(
                name="haba",
                values=NumericValues(1, 15, "mm", decimal_rate=0.3),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
                confusable_with="nagasa",
            ),
            AttributeSpec(
                name="sozai",
                values=CategoricalValues(
                    ("gin 925", "puracchina", "18 kin", "10 kin", "chitan")
                ),
                presence_rate=0.9,
                table_rate=0.85,
                text_rate=0.55,
            ),
            _color(),
        ),
        table_coverage=0.25,
        table_noise_rate=0.04,
    )
)

_register(
    CategorySchema(
        name="watches",
        locale="ja",
        title_nouns=("udedokei", "sumato wocchi"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="bando sozai",
                values=CategoricalValues(
                    ("kawa", "suteinresu", "nairon", "rabaa", "chitan")
                ),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="keesu kei",
                values=NumericValues(28, 48, "mm", decimal_rate=0.4),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.4,
            ),
            AttributeSpec(
                name="boisui",
                values=CompositeValues(("{n} kiatsu", "{n} m boisui"), low=3, high=200),
                presence_rate=0.6,
                table_rate=0.65,
                text_rate=0.35,
            ),
        ),
        table_coverage=0.3,
        table_noise_rate=0.03,
    )
)

_register(
    CategorySchema(
        name="golf",
        locale="ja",
        title_nouns=("doraibaa", "aian setto", "patta"),
        attributes=(
            _brand(),
            AttributeSpec(
                name="rofuto kaku",
                values=NumericValues(8, 60, "do", decimal_rate=0.4),
                presence_rate=0.8,
                table_rate=0.8,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="shafuto",
                values=CategoricalValues(("R", "S", "SR", "X", "L")),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.4,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(270, 330, "g", decimal_rate=0.2),
                aliases=("omosa",),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.4,
            ),
        ),
        table_coverage=0.24,
        table_noise_rate=0.05,
    )
)

_register(
    CategorySchema(
        name="futon",
        locale="ja",
        title_nouns=("futon setto", "kakebuton", "makura"),
        attributes=(
            _color(),
            _material(),
            AttributeSpec(
                name="saizu",
                values=CategoricalValues(
                    ("shinguru", "semi daburu", "daburu", "kuin", "kingu")
                ),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.6,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(1, 9, "kg", decimal_rate=0.4),
                aliases=("omosa",),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
            ),
            _origin(),
        ),
        table_coverage=0.2,
        table_noise_rate=0.08,
    )
)

_register(
    CategorySchema(
        name="headphones",
        locale="ja",
        title_nouns=("hedohon", "iyahon"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="setsuzoku",
                values=CategoricalValues(
                    ("waiyaresu", "yusen", "Bluetooth 5", "USB C")
                ),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="saisei jikan",
                values=NumericValues(4, 60, "jikan", decimal_rate=0.2),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(4, 350, "g", decimal_rate=0.3),
                aliases=("omosa",),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.4,
            ),
        ),
        table_coverage=0.27,
        table_noise_rate=0.04,
    )
)

_register(
    CategorySchema(
        name="bicycles",
        locale="ja",
        title_nouns=("jitensha", "kurosubaiku", "mamachari"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="taiya kei",
                values=NumericValues(12, 29, "inchi"),
                presence_rate=0.9,
                table_rate=0.85,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="hensoku",
                values=CompositeValues(("{n} dan hensoku",), low=3, high=27),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(7, 25, "kg", decimal_rate=0.4),
                aliases=("omosa",),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.4,
            ),
        ),
        table_coverage=0.22,
        table_noise_rate=0.06,
    )
)

_register(
    CategorySchema(
        name="rice",
        locale="ja",
        title_nouns=("kome", "genmai", "burendo mai"),
        attributes=(
            AttributeSpec(
                name="meigara",
                values=CategoricalValues(
                    (
                        "koshihikari", "akitakomachi", "hitomebore",
                        "sasanishiki", "yumepirika", "tsuyahime",
                    )
                ),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.6,
            ),
            AttributeSpec(
                name="naiyoryo",
                values=NumericValues(1, 30, "kg", decimal_rate=0.2),
                aliases=("yoryo",),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.6,
            ),
            _origin(),
            AttributeSpec(
                name="nendo",
                values=CompositeValues(("reiwa {n} nen san",), low=1, high=7),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
            ),
        ),
        table_coverage=0.3,
        table_noise_rate=0.05,
    )
)

_register(
    CategorySchema(
        name="wine",
        locale="ja",
        title_nouns=("akawain", "shirowain", "supakuringu wain"),
        attributes=(
            AttributeSpec(
                name="budoshu",
                values=CategoricalValues(
                    (
                        "kaberune", "meruro", "pino nowaru", "shadone",
                        "sovinyon buran", "shira",
                    )
                ),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.5,
            ),
            _origin(),
            AttributeSpec(
                name="naiyoryo",
                values=NumericValues(187, 1500, "ml", step=125),
                aliases=("yoryo",),
                presence_rate=0.9,
                table_rate=0.85,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="vinteji",
                values=NumericValues(1990, 2024, "nen"),
                presence_rate=0.6,
                table_rate=0.7,
                text_rate=0.35,
            ),
        ),
        table_coverage=0.26,
        table_noise_rate=0.04,
    )
)

_register(
    CategorySchema(
        name="pet_supplies",
        locale="ja",
        title_nouns=("petto fudo", "kyatto tawa", "inu yo beddo"),
        attributes=(
            _brand(aliases=("meka",)),
            AttributeSpec(
                name="taisho",
                values=CategoricalValues(
                    ("inu", "neko", "kotori", "usagi", "hamusuta")
                ),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="naiyoryo",
                values=NumericValues(1, 15, "kg", decimal_rate=0.4),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
            ),
            _color(),
        ),
        table_coverage=0.2,
        table_noise_rate=0.07,
    )
)

_register(
    CategorySchema(
        name="baby_carriers",
        locale="ja",
        title_nouns=("dakkohimo", "bebii kyaria"),
        attributes=(
            _brand(),
            _color(),
            AttributeSpec(
                name="taiju seigen",
                values=NumericValues(9, 25, "kg", decimal_rate=0.2),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="taisho nenrei",
                values=CompositeValues(
                    ("shinseiji ~ {n} sai", "{n} kagetsu ~ {m} sai"),
                    low=1,
                    high=4,
                ),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.45,
            ),
            _material(),
        ),
        table_coverage=0.24,
        table_noise_rate=0.05,
    )
)

# --- heterogeneity-study subcategories (§VIII-E) ------------------------

_register(
    CategorySchema(
        name="baby_clothes",
        locale="ja",
        title_nouns=("bebii fuku", "roonpasu"),
        attributes=(
            AttributeSpec(
                name="fuku saizu",
                values=NumericValues(50, 95, "cm", step=5),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.55,
            ),
            _color(aliases=()),
            _material(),
            AttributeSpec(
                name="taisho tsuki",
                values=CompositeValues(("{n} kagetsu ~ {m} kagetsu",), low=0, high=36),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.4,
            ),
        ),
        table_coverage=0.2,
        table_noise_rate=0.08,
    )
)

_register(
    CategorySchema(
        name="baby_toys",
        locale="ja",
        title_nouns=("gara gara", "tsumiki", "nuigurumi"),
        attributes=(
            AttributeSpec(
                name="omocha sozai",
                values=CategoricalValues(("ki", "nuno", "puraschikku", "gomu")),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="iro",
                values=CategoricalValues(JA_COLORS),
                presence_rate=0.85,
                table_rate=0.75,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="taisho nenrei",
                values=CompositeValues(
                    ("{n} sai ijo", "{n} kagetsu kara"), low=0, high=6
                ),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="juryo",
                values=NumericValues(50, 900, "g", decimal_rate=0.1, step=10),
                presence_rate=0.6,
                table_rate=0.6,
                text_rate=0.35,
            ),
            AttributeSpec(
                name="takasa",
                values=NumericValues(5, 60, "cm", decimal_rate=0.1),
                presence_rate=0.6,
                table_rate=0.6,
                text_rate=0.35,
            ),
        ),
        table_coverage=0.18,
        table_noise_rate=0.1,
    )
)

# --- the 3 German categories (§VII-B) -----------------------------------

_register(
    CategorySchema(
        name="mailbox",
        locale="de",
        title_nouns=("Briefkasten", "Paketbox", "Zeitungsrolle"),
        attributes=(
            AttributeSpec(
                name="Marke",
                values=CategoricalValues(DE_BRANDS, zipf=1.0),
                aliases=("Hersteller",),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="Farbe",
                values=CategoricalValues(DE_COLORS),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.6,
            ),
            AttributeSpec(
                name="Material",
                values=CategoricalValues(DE_MATERIALS),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="Gewicht",
                values=NumericValues(1, 15, "kg", decimal_rate=0.35),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="Breite",
                values=NumericValues(20, 60, "cm", decimal_rate=0.2),
                presence_rate=0.7,
                table_rate=0.7,
                text_rate=0.35,
            ),
        ),
        table_coverage=0.3,
        bare_page_rate=0.2,
        table_noise_rate=0.04,
    )
)

_register(
    CategorySchema(
        name="coffee_machines",
        locale="de",
        title_nouns=("Kaffeemaschine", "Espressomaschine", "Kaffeevollautomat"),
        attributes=(
            AttributeSpec(
                name="Marke",
                values=CategoricalValues(DE_BRANDS, zipf=1.0),
                aliases=("Hersteller",),
                presence_rate=0.95,
                table_rate=0.85,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="Farbe",
                values=CategoricalValues(DE_COLORS),
                presence_rate=0.85,
                table_rate=0.8,
                text_rate=0.55,
            ),
            AttributeSpec(
                name="Fassungsvermögen",
                values=NumericValues(1, 3, "l", decimal_rate=0.6),
                aliases=("Volumen",),
                presence_rate=0.8,
                table_rate=0.75,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="Leistung",
                values=NumericValues(600, 2200, "w", step=50),
                presence_rate=0.8,
                table_rate=0.8,
                text_rate=0.4,
            ),
            AttributeSpec(
                name="Typ",
                values=CategoricalValues(
                    (
                        "Filtermaschine", "Padmaschine", "Kapselmaschine",
                        "Vollautomat", "Siebträger",
                    )
                ),
                presence_rate=0.9,
                table_rate=0.8,
                text_rate=0.5,
            ),
        ),
        table_coverage=0.26,
        bare_page_rate=0.3,
        table_noise_rate=0.05,
    )
)

_register(
    CategorySchema(
        name="garden_de",
        locale="de",
        title_nouns=("Pflanzkübel", "Gartenleuchte", "Gießkanne"),
        attributes=(
            AttributeSpec(
                name="Farbe",
                values=CategoricalValues(DE_COLORS),
                presence_rate=0.9,
                table_rate=0.75,
                text_rate=0.5,
            ),
            AttributeSpec(
                name="Material",
                values=CategoricalValues(DE_MATERIALS),
                presence_rate=0.85,
                table_rate=0.75,
                text_rate=0.45,
            ),
            AttributeSpec(
                name="Gewicht",
                values=NumericValues(1, 25, "kg", decimal_rate=0.3),
                presence_rate=0.75,
                table_rate=0.7,
                text_rate=0.4,
                confusable_with="Tragkraft",
            ),
            AttributeSpec(
                name="Tragkraft",
                values=NumericValues(5, 120, "kg", step=5),
                presence_rate=0.5,
                table_rate=0.6,
                text_rate=0.3,
                confusable_with="Gewicht",
            ),
        ),
        table_coverage=0.12,
        bare_page_rate=0.35,
        compact_spec_rate=0.4,
        table_noise_rate=0.45,
        table_variant_rate=0.06,
        secondary_product_rate=0.1,
        markup_noise_rate=0.08,
        filler_sentences=(3, 7),
    )
)


#: The paper's heterogeneous parent category: Baby Goods = carriers +
#: clothes + toys (generated as a page mixture; see Marketplace).
HETEROGENEOUS_UNIONS: dict[str, tuple[str, ...]] = {
    "baby_goods": ("baby_carriers", "baby_clothes", "baby_toys"),
}

#: The eight categories reported in Tables I-IV.
CORE_JA_CATEGORIES = (
    "tennis", "kitchen", "cosmetics", "garden", "shoes",
    "ladies_bags", "digital_cameras", "vacuum_cleaner",
)

#: The three German categories of §VII-B.
GERMAN_CATEGORIES = ("mailbox", "coffee_machines", "garden_de")


def category_names() -> tuple[str, ...]:
    """All registered category names, sorted."""
    return tuple(sorted(_SCHEMAS))


def get_schema(name: str) -> CategorySchema:
    """Look up a registered category schema.

    Raises:
        KeyError: for unknown names (union categories are handled by
            :class:`~repro.corpus.marketplace.Marketplace`, not here).
    """
    return _SCHEMAS[name]


def schemas_for_locale(locale: str) -> tuple[CategorySchema, ...]:
    """All schemas of one locale, name-sorted."""
    return tuple(
        _SCHEMAS[name]
        for name in sorted(_SCHEMAS)
        if _SCHEMAS[name].locale == locale
    )
