"""The marketplace facade: generate complete category datasets.

A :class:`CategoryDataset` bundles everything one evaluation run needs:
the pages (with ground truth), the query log, the contributing schemas,
an alias→canonical attribute-name map and a structural pair validator.

Union categories (the §VIII-E heterogeneity study) mix pages from
several homogeneous subcategories under one name — exactly the paper's
"go a category up in the taxonomy" experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from ..errors import SchemaError
from ..types import ProductPage, Triple
from .categories import HETEROGENEOUS_UNIONS, get_schema
from .pages import GeneratedPage, PageGenerator
from .querylog import QueryLog, build_query_log
from .schema import CategorySchema
from .validity import PairValidator


@dataclass(frozen=True)
class CategoryDataset:
    """One category's generated corpus plus its ground truth."""

    name: str
    locale: str
    pages: tuple[GeneratedPage, ...]
    query_log: QueryLog
    schemas: tuple[CategorySchema, ...]

    @cached_property
    def product_pages(self) -> tuple[ProductPage, ...]:
        """The raw pages as the pipeline sees them."""
        return tuple(generated.page for generated in self.pages)

    @cached_property
    def correct_triples(self) -> frozenset[Triple]:
        """All triples stated truthfully somewhere in the corpus."""
        return frozenset(
            triple
            for generated in self.pages
            for triple in generated.correct_triples
        )

    @cached_property
    def incorrect_triples(self) -> frozenset[Triple]:
        """All stated-but-wrong triples (negations, secondaries, junk)."""
        return frozenset(
            triple
            for generated in self.pages
            for triple in generated.incorrect_triples
        )

    @cached_property
    def alias_map(self) -> dict[str, str]:
        """Any attribute surface name -> canonical name."""
        mapping: dict[str, str] = {}
        for schema in self.schemas:
            for attribute in schema.attributes:
                for name in attribute.all_names():
                    mapping[name] = attribute.name
        return mapping

    @cached_property
    def pair_validator(self) -> PairValidator:
        """Structural validity judge for ``<attribute, value>`` pairs."""
        return PairValidator(self.schemas)

    @cached_property
    def attribute_names(self) -> tuple[str, ...]:
        """Canonical attribute names across all contributing schemas."""
        names: list[str] = []
        for schema in self.schemas:
            for attribute in schema.attributes:
                if attribute.name not in names:
                    names.append(attribute.name)
        return tuple(names)

    def __len__(self) -> int:
        return len(self.pages)


class Marketplace:
    """Deterministic generator of category datasets.

    Args:
        seed: master RNG seed; the same (seed, category, size) triple
            always yields byte-identical pages.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed

    def generate(self, category: str, n_products: int) -> CategoryDataset:
        """Generate a dataset for a registered or union category.

        Args:
            category: a schema name from :mod:`repro.corpus.categories`
                or a union name (``"baby_goods"``).
            n_products: number of product pages.

        Returns:
            A fully materialized :class:`CategoryDataset`.
        """
        if n_products < 1:
            raise SchemaError("n_products must be >= 1")
        if category in HETEROGENEOUS_UNIONS:
            return self._generate_union(
                category, HETEROGENEOUS_UNIONS[category], n_products
            )
        schema = get_schema(category)
        rng = random.Random((self._seed, category, n_products).__repr__())
        generator = PageGenerator(schema, rng)
        pages = tuple(
            generator.generate(f"{category}_{index:05d}")
            for index in range(n_products)
        )
        return self._finalize(category, schema.locale, (schema,), pages, rng)

    def stream(
        self, category: str, n_products: int, shard_size: int = 1000
    ):
        """A lazy, shard-by-shard page source under this seed.

        The bounded-memory counterpart of :meth:`generate` for
        paper-scale corpora: pages are produced on demand, one shard
        at a time, from per-page RNG substreams (see
        :class:`~repro.corpus.stream.GeneratedPageSource` — a
        *different* deterministic corpus than :meth:`generate`, whose
        single sequential RNG cannot be entered mid-stream). Union
        categories cannot stream.

        Args:
            category: a registered (non-union) schema name.
            n_products: total pages across all shards.
            shard_size: pages per shard.

        Returns:
            A :class:`~repro.corpus.stream.GeneratedPageSource`.
        """
        from .stream import GeneratedPageSource

        return GeneratedPageSource(
            category, n_products, shard_size=shard_size, seed=self._seed
        )

    def _generate_union(
        self,
        name: str,
        member_names: tuple[str, ...],
        n_products: int,
    ) -> CategoryDataset:
        """Mix pages from several subcategories under one category name."""
        schemas = tuple(get_schema(member) for member in member_names)
        locales = {schema.locale for schema in schemas}
        if len(locales) != 1:
            raise SchemaError(f"union {name!r} mixes locales {locales}")
        rng = random.Random((self._seed, name, n_products).__repr__())
        generators = [PageGenerator(schema, rng) for schema in schemas]
        pages: list[GeneratedPage] = []
        for index in range(n_products):
            generator = generators[index % len(generators)]
            pages.append(generator.generate(f"{name}_{index:05d}"))
        rng.shuffle(pages)
        return self._finalize(
            name, schemas[0].locale, schemas, tuple(pages), rng
        )

    def _finalize(
        self,
        name: str,
        locale: str,
        schemas: tuple[CategorySchema, ...],
        pages: tuple[GeneratedPage, ...],
        rng: random.Random,
    ) -> CategoryDataset:
        stated_keys = [
            triple.value
            for generated in pages
            for triple in generated.correct_triples
        ]
        query_log = build_query_log(rng, stated_keys, locale)
        return CategoryDataset(
            name=name,
            locale=locale,
            pages=pages,
            query_log=query_log,
            schemas=schemas,
        )
