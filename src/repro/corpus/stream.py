"""Streaming page sources: shard-by-shard corpus iteration.

The monolithic path materializes every page of a category before the
pipeline starts — fine at 120 products, fatal at the paper's 200k. A
:class:`PageSource` turns the corpus into an indexed sequence of
*shards*: bounded page batches that can be generated, loaded and
processed independently, so no stage ever holds the full page set.

Three sources cover the three ways a corpus exists:

* :class:`GeneratedPageSource` — synthetic pages generated on demand,
  one independent RNG substream per page. Accessing shards in any
  order (or twice, or under a different ``shard_size``) yields
  byte-identical pages. Note the substreams make this a *different*
  (equally deterministic) corpus than ``Marketplace.generate``, whose
  single sequential RNG cannot be entered mid-stream.
* :class:`JsonlPageSource` — a ``pages.jsonl`` file read in line
  ranges via byte offsets recorded in one initial scan; shard loads
  seek, they never re-read the whole file. Malformed rows follow the
  ingest policy vocabulary: ``strict`` raises a located
  :class:`~repro.errors.DatasetError`, ``repair``/``drop`` yield a
  ``check="jsonl"`` :class:`~repro.ingest.quarantine.QuarantineEntry`
  in the row's place so the run's ledger keeps its position.
* :class:`MaterializedPageSource` — an in-memory page list presented
  through the shard interface. No memory is saved; it exists so the
  sharded bootstrap can be compared bit-for-bit against the monolithic
  path on the same pages (the ``make verify`` smoke).

Every source carries a :meth:`~PageSource.fingerprint` — a stable
digest of the source identity — that the sharded checkpoint layer
folds into its run fingerprint in place of hashing every page's HTML.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random
from typing import Iterator

from ..config import INGEST_POLICIES
from ..errors import ConfigError, DatasetError, ReproError, SchemaError
from ..ingest.quarantine import QuarantineEntry
from ..types import ProductPage
from .categories import HETEROGENEOUS_UNIONS, get_schema
from .pages import GeneratedPage, PageGenerator
from .querylog import QueryLog, build_query_log

#: A shard is a list of records: kept :class:`ProductPage` objects
#: interleaved (for file-backed sources) with
#: :class:`QuarantineEntry` placeholders for rows that failed to parse.
ShardRecord = ProductPage | QuarantineEntry


class PageSource:
    """Indexed shard access over one category's page corpus.

    Subclasses set :attr:`category`, :attr:`locale`, :attr:`shard_size`
    and :attr:`page_count`, and implement :meth:`shard` and
    :meth:`fingerprint`.
    """

    category: str
    locale: str
    shard_size: int
    page_count: int

    @property
    def shard_count(self) -> int:
        """Number of shards (last one may be short)."""
        if self.page_count == 0:
            return 0
        return -(-self.page_count // self.shard_size)

    def shard(self, index: int) -> list[ShardRecord]:
        """Records of one shard, in corpus order."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable digest of the source identity (checkpoint validity)."""
        raise NotImplementedError

    def iter_pages(self) -> Iterator[ProductPage]:
        """Every page, shard by shard (at most one shard resident)."""
        for index in range(self.shard_count):
            for record in self.shard(index):
                if isinstance(record, ProductPage):
                    yield record

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.shard_count:
            raise ConfigError(
                f"shard index {index} out of range "
                f"[0, {self.shard_count})"
            )

    def _shard_bounds(self, index: int) -> tuple[int, int]:
        start = index * self.shard_size
        return start, min(start + self.shard_size, self.page_count)


def _check_shard_size(shard_size: int) -> None:
    if shard_size < 1:
        raise ConfigError("shard_size must be >= 1")


class GeneratedPageSource(PageSource):
    """Generate one category's pages shard-by-shard, on demand.

    Each *page* owns an independent RNG substream seeded from
    ``(seed, category, n_products, "page", number)``, so shards can be
    produced in any order — or in parallel worker processes, or under
    a different ``shard_size`` — and every page always comes out
    byte-identical. Page ids stay globally numbered
    (``{category}_{00042}``) regardless of sharding. ``shard_size``
    still participates in :meth:`fingerprint`: per-shard tag
    snapshots are keyed by shard index, so a checkpoint must not
    resume under a different shard layout.

    Union categories interleave several generators through one shared
    RNG and shuffle at the end; that cannot be entered mid-stream, so
    they are rejected here.

    Args:
        category: a registered (non-union) schema name.
        n_products: total pages across all shards.
        shard_size: pages per shard.
        seed: master seed, same role as ``Marketplace(seed=...)``.
    """

    def __init__(
        self,
        category: str,
        n_products: int,
        shard_size: int = 1000,
        seed: int = 0,
    ):
        if n_products < 1:
            raise SchemaError("n_products must be >= 1")
        if category in HETEROGENEOUS_UNIONS:
            raise SchemaError(
                f"union category {category!r} cannot be streamed: its "
                "page mix is a single shuffled RNG stream; generate it "
                "materialized or stream its member categories"
            )
        _check_shard_size(shard_size)
        self._schema = get_schema(category)
        self.category = category
        self.locale = self._schema.locale
        self.n_products = n_products
        self.page_count = n_products
        self.shard_size = shard_size
        self.seed = seed

    def _shard_rng(self, token: object) -> random.Random:
        return random.Random(
            (self.seed, self.category, self.n_products, token).__repr__()
        )

    def shard_generated(self, index: int) -> list[GeneratedPage]:
        """One shard's pages with generator ground truth attached."""
        self._check_index(index)
        start, end = self._shard_bounds(index)
        return [
            PageGenerator(
                self._schema, self._shard_rng(("page", number))
            ).generate(f"{self.category}_{number:05d}")
            for number in range(start, end)
        ]

    def shard(self, index: int) -> list[ShardRecord]:
        return [
            generated.page for generated in self.shard_generated(index)
        ]

    def iter_generated(self) -> Iterator[GeneratedPage]:
        """Every generated page with ground truth, shard by shard."""
        for index in range(self.shard_count):
            yield from self.shard_generated(index)

    def build_query_log(self) -> QueryLog:
        """The category's query log, from a dedicated RNG substream.

        Scans every shard once for the stated truthful value keys
        (popularity weights), holding one shard of pages at a time.
        """
        stated_keys: list[str] = []
        for index in range(self.shard_count):
            for generated in self.shard_generated(index):
                stated_keys.extend(
                    triple.value for triple in generated.correct_triples
                )
        rng = self._shard_rng("querylog")
        return build_query_log(rng, stated_keys, self.locale)

    def fingerprint(self) -> str:
        body = json.dumps(
            [
                "generated",
                self.seed,
                self.category,
                self.n_products,
                self.shard_size,
            ]
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


class MaterializedPageSource(PageSource):
    """Shard-interface view over pages already held in memory.

    Saves nothing; exists so the sharded path can run on exactly the
    pages a monolithic run used and be compared bit-for-bit.
    """

    def __init__(
        self,
        pages,
        shard_size: int = 1000,
        category: str = "",
        locale: str | None = None,
    ):
        _check_shard_size(shard_size)
        self._pages: tuple[ProductPage, ...] = tuple(pages)
        self.shard_size = shard_size
        self.page_count = len(self._pages)
        self.category = category or (
            self._pages[0].category if self._pages else ""
        )
        self.locale = locale or (
            self._pages[0].locale if self._pages else "ja"
        )

    def shard(self, index: int) -> list[ShardRecord]:
        self._check_index(index)
        start, end = self._shard_bounds(index)
        return list(self._pages[start:end])

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(f"materialized:{self.shard_size}".encode("utf-8"))
        for page in self._pages:
            for part in (
                page.product_id, page.category, page.locale, page.html
            ):
                digest.update(part.encode("utf-8"))
                digest.update(b"\x00")
        return digest.hexdigest()


class JsonlPageSource(PageSource):
    """Line-range shards over a ``pages.jsonl`` file.

    One initial scan counts rows and records the byte offset of every
    shard's first line; :meth:`shard` then seeks straight to its range
    and decodes ``shard_size`` rows. Row schema and defaults match
    :func:`repro.corpus.io.load_pages` (``product_id`` + ``html``
    required; ``category``/``locale`` defaulted), so a clean file
    streams to exactly the pages the monolithic loader returns.

    Args:
        path: a ``pages.jsonl`` file, or a directory containing one.
        shard_size: rows per shard.
        policy: bad-row handling — ``strict`` raises a located
            :class:`DatasetError`; ``repair``/``drop`` substitute a
            ``check="jsonl"`` :class:`QuarantineEntry` for the row.
        category: label for reporting (defaults to the file stem).
        locale: locale assumed for rows that omit one.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        shard_size: int = 1000,
        policy: str = "strict",
        category: str = "",
        locale: str = "ja",
    ):
        _check_shard_size(shard_size)
        if policy not in INGEST_POLICIES:
            raise ConfigError(
                f"policy must be one of {INGEST_POLICIES}, got {policy!r}"
            )
        path = pathlib.Path(path)
        self.path = path / "pages.jsonl" if path.is_dir() else path
        if not self.path.exists():
            raise ReproError(f"no pages.jsonl at {path}")
        self.shard_size = shard_size
        self.policy = policy
        self.locale = locale
        self.category = category or self.path.stem
        self._offsets: list[int] = []
        count = 0
        with open(self.path, "rb") as handle:
            offset = handle.tell()
            for line in handle:
                if count % shard_size == 0:
                    self._offsets.append(offset)
                count += 1
                offset += len(line)
        self.page_count = count
        self._size = self.path.stat().st_size

    def shard(self, index: int) -> list[ShardRecord]:
        from .io import _parse_row

        self._check_index(index)
        start, end = self._shard_bounds(index)
        records: list[ShardRecord] = []
        with open(self.path, "rb") as handle:
            handle.seek(self._offsets[index])
            for number in range(start + 1, end + 1):
                line = handle.readline().decode("utf-8")
                try:
                    record = _parse_row(
                        line, number, self.path, ("product_id", "html")
                    )
                except DatasetError as error:
                    if self.policy == "strict":
                        raise
                    records.append(
                        QuarantineEntry(
                            page_id=f"line-{error.line}",
                            check="jsonl",
                            error=type(error).__name__,
                            detail=str(error),
                            source=error.path,
                            line=error.line,
                        )
                    )
                    continue
                records.append(
                    ProductPage(
                        record["product_id"],
                        record.get("category", "unknown"),
                        record["html"],
                        record.get("locale", self.locale),
                    )
                )
        return records

    def query_log(self) -> QueryLog:
        """The sibling ``querylog.json``, or an empty log."""
        from collections import Counter

        query_path = self.path.parent / "querylog.json"
        counts = Counter(
            json.loads(query_path.read_text())
            if query_path.exists()
            else {}
        )
        return QueryLog(counts)

    def fingerprint(self) -> str:
        body = json.dumps(
            [
                "jsonl",
                str(self.path.resolve()),
                self._size,
                self.page_count,
                self.shard_size,
                self.policy,
            ]
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()
