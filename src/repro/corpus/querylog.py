"""Synthetic user search-query log.

The pipeline uses query logs only to keep seed values "that are found in
search queries" (Section V-A). Real logs are dominated by popular true
values plus navigational noise; the generator reproduces exactly that:
queries sampled from the values products actually have (head-heavy), a
few attribute-name queries, and generic noise terms.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from .values import value_key


@dataclass(frozen=True)
class QueryLog:
    """A frequency-counted bag of search queries.

    Queries are stored as canonical value keys so membership checks in
    the pipeline are format-insensitive.
    """

    counts: Counter = field(default_factory=Counter)

    def contains(self, key: str) -> bool:
        """True when the canonical value key was ever searched."""
        return key in self.counts

    def frequency(self, key: str) -> int:
        return self.counts.get(key, 0)

    def __len__(self) -> int:
        return len(self.counts)


_NOISE_QUERIES = (
    "sale", "gift", "2024", "free shipping", "coupon", "point", "new",
)


def build_query_log(
    rng: random.Random,
    stated_value_keys: Iterable[str],
    locale: str,
    *,
    coverage: float = 0.8,
    noise_queries: int = 30,
) -> QueryLog:
    """Build a query log covering most popular stated values.

    Args:
        rng: random source.
        stated_value_keys: value keys stated across the category's pages
            (duplicates encode popularity).
        locale: page locale, for normalizing noise queries.
        coverage: probability that a given distinct value, weighted by
            popularity rank, appears in the log — popular values almost
            always do, tail values often do not. This reproduces the
            seed filter's behaviour of dropping rare-but-true values
            (which diversification later repairs).
        noise_queries: count of generic noise queries added.

    Returns:
        A :class:`QueryLog`.
    """
    popularity: Counter[str] = Counter(stated_value_keys)
    counts: Counter[str] = Counter()
    ranked = [key for key, _ in popularity.most_common()]
    for rank, key in enumerate(ranked):
        # Popular values are searched often; tail values (rare variants,
        # exotic decimals) mostly never appear in the log. The steep
        # decay matters: the paper's diversification module exists
        # precisely because frequency/query filters drop rare-but-true
        # value shapes from the seed (§VIII-A).
        keep_probability = coverage * max(
            0.05, 1.0 - 1.6 * rank / len(ranked)
        )
        if rng.random() < keep_probability:
            counts[key] = 1 + popularity[key] * rng.randint(1, 4)
    for _ in range(noise_queries):
        query = rng.choice(_NOISE_QUERIES)
        counts[value_key(query, locale)] += 1
    return QueryLog(counts)
