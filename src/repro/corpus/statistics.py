"""Corpus profiling: the statistics calibration depends on.

The pipeline's behaviour is a function of a handful of corpus
statistics (docs/calibration.md); :func:`profile_pages` measures them
on any page collection — synthetic or real — so recalibration and
sanity-checking real data is mechanical:

* how many pages have dictionary tables, and how many rows they carry;
* description richness (sentences/tokens per page);
* per-attribute-name table support (what the seed will see);
* value-shape histogram (PoS-tag sequences — what diversification
  operates on).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..html import extract_dictionary_tables, parse_html
from ..nlp import get_locale
from ..types import ProductPage


@dataclass(frozen=True)
class CorpusProfile:
    """Aggregate statistics of one page collection."""

    page_count: int
    pages_with_tables: int
    table_rows: int
    sentences_per_page: float
    tokens_per_page: float
    attribute_support: dict[str, int]
    value_shapes: dict[str, int]

    @property
    def table_coverage(self) -> float:
        """Share of pages with at least one dictionary table."""
        if self.page_count == 0:
            return 0.0
        return self.pages_with_tables / self.page_count

    def format(self) -> str:
        """Human-readable profile report."""
        lines = [
            f"pages:             {self.page_count}",
            f"with dict tables:  {self.pages_with_tables} "
            f"({100 * self.table_coverage:.1f}%)",
            f"table rows:        {self.table_rows}",
            f"sentences/page:    {self.sentences_per_page:.1f}",
            f"tokens/page:       {self.tokens_per_page:.1f}",
            "top attribute names in tables:",
        ]
        support = Counter(self.attribute_support)
        for name, count in support.most_common(12):
            lines.append(f"  {name}: {count}")
        lines.append("top value shapes (PoS sequences):")
        shapes = Counter(self.value_shapes)
        for shape, count in shapes.most_common(10):
            lines.append(f"  {shape}: {count}")
        return "\n".join(lines)

    def seed_viability_warnings(
        self,
        *,
        min_attribute_pages: int = 3,
        min_table_coverage: float = 0.02,
    ) -> list[str]:
        """Warnings when the corpus cannot seed the pipeline well.

        Mirrors the seed-stage thresholds: without enough recurring
        table attributes there will be nothing to bootstrap from.
        """
        warnings: list[str] = []
        if self.table_coverage < min_table_coverage:
            warnings.append(
                f"only {100 * self.table_coverage:.1f}% of pages have "
                "dictionary tables; the seed will be tiny"
            )
        viable = [
            name
            for name, count in self.attribute_support.items()
            if count >= min_attribute_pages
        ]
        if len(viable) < 2:
            warnings.append(
                "fewer than 2 attribute names recur across "
                f"{min_attribute_pages}+ pages; aggregation will drop "
                "almost everything"
            )
        return warnings


def profile_pages(pages: Sequence[ProductPage]) -> CorpusProfile:
    """Profile a page collection (see module docstring)."""
    from ..core.text import tokenize_page

    pages_with_tables = 0
    table_rows = 0
    sentence_total = 0
    token_total = 0
    attribute_support: Counter = Counter()
    value_shapes: Counter = Counter()
    for page in pages:
        nlp = get_locale(page.locale)
        root = parse_html(page.html)
        tables = extract_dictionary_tables(root)
        if tables:
            pages_with_tables += 1
        page_attributes: set[str] = set()
        for table in tables:
            for name, value in table.pairs:
                table_rows += 1
                name_tokens = nlp.tokenizer.tokenize(name)
                page_attributes.add(" ".join(name_tokens))
                value_tokens = nlp.tokenizer.tokenize(value)
                shape = " ".join(nlp.pos_tagger.tag(value_tokens))
                value_shapes[shape] += 1
        attribute_support.update(page_attributes)
        text = tokenize_page(page)
        sentence_total += len(text.sentences)
        token_total += text.token_count()
    count = len(pages)
    return CorpusProfile(
        page_count=count,
        pages_with_tables=pages_with_tables,
        table_rows=table_rows,
        sentences_per_page=sentence_total / count if count else 0.0,
        tokens_per_page=token_total / count if count else 0.0,
        attribute_support=dict(attribute_support),
        value_shapes=dict(value_shapes),
    )
