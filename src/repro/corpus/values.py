"""Sampling concrete :class:`ValueInstance` objects from value specs.

The token form produced here must agree with what the locale tokenizer
yields when the display form is embedded in page text — the pipeline's
ground truth is keyed on tokens. A property test in
``tests/test_corpus_values.py`` enforces this round-trip for every spec
in every shipped category.
"""

from __future__ import annotations

import random

from ..errors import SchemaError
from ..nlp import get_locale
from .schema import (
    CategoricalValues,
    CompositeValues,
    NumericValues,
    ValueInstance,
    ValueSpec,
    weighted_choice,
    zipf_weights,
)


def _format_thousands(magnitude: int) -> str:
    return f"{magnitude:,}"


def sample_numeric(
    rng: random.Random, spec: NumericValues, locale: str
) -> ValueInstance:
    """Draw a numeric value, respecting locale tokenization.

    In the ``ja`` locale a decimal like ``2.5`` tokenizes into three
    tokens; in ``de`` the comma decimal stays one token. The display
    form randomly glues or spaces the unit — both tokenize identically.
    """
    steps = (spec.high - spec.low) // spec.step
    magnitude = spec.low + spec.step * rng.randint(0, steps)
    decimal_digit: int | None = None
    if spec.decimal_rate and rng.random() < spec.decimal_rate:
        decimal_digit = rng.randint(1, 9)
    use_thousands = (
        magnitude >= 1000
        and decimal_digit is None
        and spec.thousands_rate
        and rng.random() < spec.thousands_rate
    )
    if decimal_digit is not None:
        if locale == "de":
            number_display = f"{magnitude},{decimal_digit}"
            number_tokens: tuple[str, ...] = (number_display,)
        else:
            number_display = f"{magnitude}.{decimal_digit}"
            number_tokens = (str(magnitude), ".", str(decimal_digit))
    elif use_thousands:
        if locale == "de":
            number_display = f"{magnitude:_}".replace("_", ".")
            number_tokens = (number_display,)
        else:
            number_display = _format_thousands(magnitude)
            parts: list[str] = []
            chunks = number_display.split(",")
            for index, chunk in enumerate(chunks):
                if index:
                    parts.append(",")
                parts.append(chunk)
            number_tokens = tuple(parts)
    else:
        number_display = str(magnitude)
        number_tokens = (number_display,)
    glue = rng.random() < 0.5
    display = (
        f"{number_display}{spec.unit}" if glue
        else f"{number_display} {spec.unit}"
    )
    return ValueInstance(display, (*number_tokens, spec.unit))


def sample_categorical(
    rng: random.Random, spec: CategoricalValues, locale: str
) -> ValueInstance:
    """Draw a categorical value with head-skewed popularity."""
    value = weighted_choice(rng, spec.values, spec.zipf)
    tokens = tuple(get_locale(locale).tokenizer.tokenize(value))
    return ValueInstance(value, tokens)


def sample_composite(
    rng: random.Random, spec: CompositeValues, locale: str
) -> ValueInstance:
    """Instantiate one composite pattern with random integers."""
    pattern = weighted_choice(rng, spec.patterns, skew=0.7)
    filled = pattern
    if "{n}" in filled:
        filled = filled.replace("{n}", str(rng.randint(spec.low, spec.high)))
    if "{m}" in filled:
        filled = filled.replace("{m}", str(rng.randint(spec.low, spec.high)))
    tokens = tuple(get_locale(locale).tokenizer.tokenize(filled))
    return ValueInstance(filled, tokens)


def sample_value(
    rng: random.Random, spec: ValueSpec, locale: str
) -> ValueInstance:
    """Dispatch on the spec type."""
    if isinstance(spec, NumericValues):
        return sample_numeric(rng, spec, locale)
    if isinstance(spec, CategoricalValues):
        return sample_categorical(rng, spec, locale)
    if isinstance(spec, CompositeValues):
        return sample_composite(rng, spec, locale)
    raise SchemaError(f"unknown value spec type: {type(spec).__name__}")


def value_key(display_or_tokens: str | tuple[str, ...], locale: str) -> str:
    """Canonical value identity from a display string or token tuple.

    Every subsystem — seed extraction, tagging, truth construction —
    funnels values through this function so that ``"2.5kg"``, ``"2.5
    kg"`` and the token tuple all map to the same key.
    """
    if isinstance(display_or_tokens, str):
        tokens = get_locale(locale).tokenizer.tokenize(display_or_tokens)
    else:
        tokens = list(display_or_tokens)
    return " ".join(tokens)


def spec_value_inventory(spec: ValueSpec) -> tuple[str, ...] | None:
    """The closed value list of a categorical spec, else None.

    Used by the attribute-aggregation tests and the query-log builder;
    numeric/composite specs have open inventories.
    """
    if isinstance(spec, CategoricalValues):
        return spec.values
    return None
