"""The ``ja`` locale style.

Stands in for MeCab-segmented Japanese product copy. Text is romanized
and pre-segmented (spaces where MeCab would cut), which keeps every
behaviour the pipeline depends on — particle function words, the ``。``
sentence terminator, numbers splitting at ``.`` and ``,`` — while staying
ASCII-debuggable. See DESIGN.md §1 for the substitution argument.
"""

from __future__ import annotations

from .base import LocaleStyle, register_style

# Three merchant dialects; table-heavy shops write like dialect 0.
_STATEMENT_DIALECTS = (
    (
        "{attr} wa {value} desu。",
        "kono shohin no {attr} wa {value} desu。",
        "{attr} wa {value} to natte imasu。",
    ),
    (
        "{attr} : {value}。",
        "shiyo {attr} {value}。",
        "{attr} {value}。",
    ),
    (
        "{value} no {attr} de anshin shite tsukaemasu。",
        "{attr} ga {value} dakara benri desu。",
        "{attr} {value} ni narimasu。",
    ),
)

_COMPACT = (
    "{values} no {noun} desu。",
    "{values} {noun}。",
    "shiyo : {values}。",
)

_NEGATIONS = (
    "{attr} wa {value} dewa arimasen。",
    "kono shohin ni {value} no {attr} wa fukumarete imasen。",
)

_SECONDARY = (
    "osusume shohin {other} no {attr} wa {value} desu。",
    "betsu shohin {other} mo ninki desu 、 {attr} wa {value} desu。",
)

_FILLERS = (
    "goriyo arigato gozaimasu。",
    "sokujitsu hasso dekimasu。",
    "rappingu taio mo shimasu。",
    "zaiko kagiri no tokubetsu kakaku desu。",
    "okyakusama ni ninki no shohin desu。",
    "henpin wa uketsukete orimasen。",
    "kuwashiku wa shosai o goran kudasai。",
    "shin shohin ga nyuka shimashita。",
    "poinito juu bai kyanpen chuu desu。",
    "go chuumon wa osame ni onegai shimasu。",
)

_BRANDS = (
    "Nikkon", "Sorex", "Hikari", "Yamado", "Kazeno",
    "Sakura", "Mitsuba", "Aoyama", "Fujita", "Kawado",
)

_MARKUP_NOISE = ("<br>", "&nbsp;", "</span>", "<b>", "★★★")

# Few distinct names/values on purpose: junk rows repeat across pages
# (the same boilerplate disclaimer everywhere), which is what lets them
# survive the seed's frequency filter and dent seed precision.
_JUNK_TABLE_ROWS = (
    ("chuui jiko", "※ gazo wa imeji desu"),
    ("sonota", "―"),
    ("sonota", "※ gazo wa imeji desu"),
    ("bikou", "rappingu taio shimasu node otoiawase kudasai masen ka"),
    ("bikou", "―"),
)

register_style(
    LocaleStyle(
        locale="ja",
        statement_dialects=_STATEMENT_DIALECTS,
        negation_templates=_NEGATIONS,
        compact_templates=_COMPACT,
        secondary_templates=_SECONDARY,
        filler_sentences=_FILLERS,
        brands=_BRANDS,
        title_template="{brand} {noun} {model}",
        markup_noise=_MARKUP_NOISE,
        junk_table_rows=_JUNK_TABLE_ROWS,
    )
)
