"""Locale styles: how merchants of each language write product pages."""

from .base import LocaleStyle, get_style
from . import german, japanese  # noqa: F401  (register styles)

__all__ = ["LocaleStyle", "get_style"]
