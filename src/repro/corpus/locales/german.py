"""The ``de`` locale style — Rakuten.de-like German product copy."""

from __future__ import annotations

from .base import LocaleStyle, register_style

_STATEMENT_DIALECTS = (
    (
        "{attr} : {value} .",
        "{attr} ist {value} .",
        "Das Produkt hat ein {attr} von {value} .",
    ),
    (
        "Dieses Modell bietet {attr} {value} .",
        "Mit {attr} {value} geliefert .",
        "Ausstattung {attr} {value} .",
    ),
)

_COMPACT = (
    "{values} {noun} .",
    "Ausführung : {values} .",
)

_NEGATIONS = (
    "{attr} ist nicht {value} .",
    "Dieses Produkt hat kein {attr} von {value} .",
)

_SECONDARY = (
    "Empfehlung : {other} mit {attr} {value} .",
    "Auch beliebt : {other} , {attr} {value} .",
)

_FILLERS = (
    "Vielen Dank für Ihren Einkauf .",
    "Versand erfolgt noch am selben Tag .",
    "Geschenkverpackung ist möglich .",
    "Nur solange der Vorrat reicht .",
    "Ein beliebtes Produkt bei unseren Kunden .",
    "Rückgabe innerhalb von vierzehn Tagen .",
    "Weitere Details finden Sie unten .",
    "Neu im Sortiment eingetroffen .",
)

_BRANDS = (
    "Hausmann", "Bergfeld", "Steinbach", "Waldner", "Krause",
    "Lindemann", "Falke", "Brandt",
)

_MARKUP_NOISE = ("<br>", "&nbsp;", "</div>", "<i>", "***")

_JUNK_TABLE_ROWS = (
    ("Hinweis", "Abbildung ähnlich"),
    ("Sonstiges", "―"),
    ("Sonstiges", "Abbildung ähnlich"),
    ("Hinweis", "Versand erfolgt innerhalb von zwei bis vier Werktagen nach Bestellung"),
)

register_style(
    LocaleStyle(
        locale="de",
        statement_dialects=_STATEMENT_DIALECTS,
        negation_templates=_NEGATIONS,
        compact_templates=_COMPACT,
        secondary_templates=_SECONDARY,
        filler_sentences=_FILLERS,
        brands=_BRANDS,
        title_template="{brand} {noun} {model}",
        markup_noise=_MARKUP_NOISE,
        junk_table_rows=_JUNK_TABLE_ROWS,
    )
)
