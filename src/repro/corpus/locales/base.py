"""Locale style: sentence templates and page phrasing per language.

A :class:`LocaleStyle` holds everything language-specific about *page
generation* (the NLP side lives in :mod:`repro.nlp`): statement /
negation / secondary-product sentence templates, filler sentences, brand
pools and title phrasing.

Templates are plain format strings over ``{attr}`` and ``{value}``;
secondary templates additionally take ``{other}``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...errors import UnknownLocaleError


@dataclass(frozen=True)
class LocaleStyle:
    """Language-specific page phrasing.

    Attributes:
        locale: locale code, matching a registered NLP bundle.
        statement_dialects: groups of statement templates; each page is
            written by a merchant using one dialect. Dialects matter for
            bootstrap dynamics: table-heavy merchants share a dialect,
            so the seed-trained tagger knows their phrasing but must
            *learn* the others across iterations — the coverage growth
            of the paper's Figure 3.
        negation_templates: ways to deny an attribute value.
        compact_templates: spec-line sentences listing bare values with
            no attribute names ("aka hana gata uekibachi") — the main
            source of the cross-attribute drift that semantic cleaning
            exists to fight.
        secondary_templates: ways to mention another product's value.
        filler_sentences: attribute-free boilerplate pool.
        brands: merchant/brand name pool for titles.
        title_template: format string over ``{brand}`` / ``{noun}`` /
            ``{model}``.
        markup_noise: literal markup fragments that occasionally leak
            into visible text (drives the markup veto rule).
        junk_table_rows: ``(name, value)`` junk rows injected into noisy
            dictionary tables (drives seed precision differences).
    """

    locale: str
    statement_dialects: tuple[tuple[str, ...], ...]
    negation_templates: tuple[str, ...]
    compact_templates: tuple[str, ...]
    secondary_templates: tuple[str, ...]
    filler_sentences: tuple[str, ...]
    brands: tuple[str, ...]
    title_template: str
    markup_noise: tuple[str, ...]
    junk_table_rows: tuple[tuple[str, str], ...]

    @property
    def dialect_count(self) -> int:
        return len(self.statement_dialects)

    def statement(
        self, rng: random.Random, attr: str, value: str, dialect: int = 0
    ) -> str:
        """One sentence asserting ``attr`` = ``value`` in a dialect."""
        templates = self.statement_dialects[dialect % self.dialect_count]
        return rng.choice(templates).format(attr=attr, value=value)

    def negation(self, rng: random.Random, attr: str, value: str) -> str:
        """One sentence denying ``attr`` = ``value``."""
        return rng.choice(self.negation_templates).format(
            attr=attr, value=value
        )

    def compact(
        self, rng: random.Random, values: list[str], noun: str
    ) -> str:
        """A spec line listing bare values (no attribute names)."""
        return rng.choice(self.compact_templates).format(
            values=" ".join(values), noun=noun
        )

    def secondary(
        self, rng: random.Random, attr: str, value: str, other: str
    ) -> str:
        """One sentence about a *different* product's value."""
        return rng.choice(self.secondary_templates).format(
            attr=attr, value=value, other=other
        )

    def filler(self, rng: random.Random) -> str:
        """One attribute-free boilerplate sentence."""
        return rng.choice(self.filler_sentences)

    def title(
        self,
        rng: random.Random,
        noun: str,
        model: str,
        brand: str | None = None,
    ) -> str:
        """A product title; uses the product's real brand when known."""
        if brand is None:
            brand = rng.choice(self.brands)
        return self.title_template.format(
            brand=brand, noun=noun, model=model
        )


_STYLES: dict[str, LocaleStyle] = {}


def register_style(style: LocaleStyle) -> None:
    """Register a locale style (called by the locale modules)."""
    _STYLES[style.locale] = style


def get_style(locale: str) -> LocaleStyle:
    """Return the page style for ``locale``.

    Raises:
        UnknownLocaleError: if the locale has no registered style.
    """
    try:
        return _STYLES[locale]
    except KeyError:
        raise UnknownLocaleError(locale, tuple(sorted(_STYLES))) from None
