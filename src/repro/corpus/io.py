"""Dataset serialization: JSONL on disk, real-data entry point.

A :class:`~repro.corpus.marketplace.CategoryDataset` round-trips through
a directory of JSON files:

* ``pages.jsonl`` — one page per line: product_id, category, locale,
  html, and (when known) the annotated correct/incorrect triples;
* ``querylog.json`` — query → count;
* ``meta.json`` — dataset name, locale, schema names.

This is also the adoption path for *real* data: write your product
pages into ``pages.jsonl`` (ground-truth fields optional), and
:func:`load_pages` returns what :class:`~repro.PAEPipeline.run` needs.
Schemas are resolved by name from the registry, so loaded synthetic
datasets keep their validators; real-data directories simply omit them.

Real crawl dumps contain garbage rows — truncated JSON, non-object
lines, missing keys. Both loaders route them through the same policy
vocabulary as the ingest gate: ``strict`` (default) raises a
:class:`~repro.errors.DatasetError` naming the file and 1-based line
number; ``repair``/``drop`` skip the row and, when a
:class:`~repro.ingest.Quarantine` ledger is passed, record it there
with ``check="jsonl"`` diagnostics.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import TYPE_CHECKING, Iterable, Iterator

from ..config import INGEST_POLICIES
from ..errors import ConfigError, DatasetError, ReproError
from ..types import ProductPage, Triple
from .categories import get_schema
from .marketplace import CategoryDataset, GeneratedPage
from .querylog import QueryLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ingest import Quarantine

_FORMAT_VERSION = 1


def _triples_to_json(triples: Iterable[Triple]) -> list[list[str]]:
    return sorted(
        [t.product_id, t.attribute, t.value] for t in triples
    )


def _triples_from_json(rows: list[list[str]]) -> frozenset[Triple]:
    return frozenset(Triple(*row) for row in rows)


def save_dataset(
    dataset: CategoryDataset, directory: str | pathlib.Path
) -> None:
    """Write a dataset to ``directory`` (created if needed)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "pages.jsonl", "w", encoding="utf-8") as out:
        for generated in dataset.pages:
            record = {
                "product_id": generated.page.product_id,
                "category": generated.page.category,
                "locale": generated.page.locale,
                "html": generated.page.html,
                "correct_triples": _triples_to_json(
                    generated.correct_triples
                ),
                "incorrect_triples": _triples_to_json(
                    generated.incorrect_triples
                ),
                "assignment": dict(sorted(generated.assignment.items())),
            }
            out.write(json.dumps(record, ensure_ascii=False) + "\n")
    (directory / "querylog.json").write_text(
        json.dumps(dict(dataset.query_log.counts), ensure_ascii=False)
    )
    (directory / "meta.json").write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "name": dataset.name,
                "locale": dataset.locale,
                "schemas": [schema.name for schema in dataset.schemas],
            }
        )
    )


def _parse_row(
    line: str,
    number: int,
    path: pathlib.Path,
    required: tuple[str, ...],
) -> dict:
    """Decode one JSONL row, raising a located :class:`DatasetError`."""
    try:
        record = json.loads(line)
    except ValueError as error:
        raise DatasetError(
            f"malformed JSONL row: {error}", str(path), number
        ) from error
    if not isinstance(record, dict):
        raise DatasetError(
            f"JSONL row is not an object "
            f"(got {type(record).__name__})",
            str(path),
            number,
        )
    missing = [key for key in required if key not in record]
    if missing:
        raise DatasetError(
            f"JSONL row is missing required keys {missing}",
            str(path),
            number,
        )
    for key in required:
        if not isinstance(record[key], str):
            raise DatasetError(
                f"JSONL field {key!r} must be a string "
                f"(got {type(record[key]).__name__})",
                str(path),
                number,
            )
    return record


def _row_policy_skip(
    error: DatasetError,
    policy: str,
    quarantine: "Quarantine | None",
) -> None:
    """Handle one bad row under the ingest policy vocabulary.

    ``strict`` re-raises; ``repair``/``drop`` (a serialized row has
    nothing to repair, so they behave identically here) record the row
    in the ledger, when one was passed, and skip it.
    """
    if policy == "strict":
        raise error
    if quarantine is not None:
        from ..ingest import QuarantineEntry

        quarantine.add(
            QuarantineEntry(
                page_id=f"line-{error.line}",
                check="jsonl",
                error=type(error).__name__,
                detail=str(error),
                source=error.path,
                line=error.line,
            )
        )


def _check_policy(policy: str) -> None:
    if policy not in INGEST_POLICIES:
        raise ConfigError(
            f"policy must be one of {INGEST_POLICIES}, got {policy!r}"
        )


def iter_page_rows(
    pages_path: str | pathlib.Path,
    required: tuple[str, ...],
    policy: str = "strict",
    quarantine: "Quarantine | None" = None,
) -> Iterator[dict]:
    """Stream validated JSONL records one line at a time.

    The file is consumed lazily — one line resident at a time — so
    callers (the loaders below, :class:`~repro.corpus.stream.\
JsonlPageSource`) never re-materialize the file behind the streaming
    layer's back. Bad rows follow the ingest policy vocabulary via
    :func:`_row_policy_skip`.
    """
    _check_policy(policy)
    pages_path = pathlib.Path(pages_path)
    with open(pages_path, encoding="utf-8") as lines:
        for number, line in enumerate(lines, start=1):
            try:
                yield _parse_row(line, number, pages_path, required)
            except DatasetError as error:
                _row_policy_skip(error, policy, quarantine)


def load_dataset(
    directory: str | pathlib.Path,
    policy: str = "strict",
    quarantine: "Quarantine | None" = None,
) -> CategoryDataset:
    """Load a dataset saved by :func:`save_dataset`.

    Args:
        directory: the saved dataset directory.
        policy: bad-row handling — ``strict`` raises, ``repair``/
            ``drop`` skip the row (see the module docstring).
        quarantine: optional ledger skipped rows are recorded in.

    Raises:
        ReproError: when the directory is missing files or carries an
            unsupported format version.
        DatasetError: under ``strict``, for a row that is not valid
            JSON, not an object, or missing required keys — the error
            names the file and 1-based line number.
    """
    _check_policy(policy)
    directory = pathlib.Path(directory)
    meta_path = directory / "meta.json"
    pages_path = directory / "pages.jsonl"
    if not meta_path.exists() or not pages_path.exists():
        raise ReproError(f"no saved dataset at {directory}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported dataset format {meta.get('format_version')!r}"
        )
    pages = []
    required = ("product_id", "category", "html", "locale")
    for record in iter_page_rows(
        pages_path, required, policy, quarantine
    ):
        page = ProductPage(
            record["product_id"],
            record["category"],
            record["html"],
            record["locale"],
        )
        pages.append(
            GeneratedPage(
                page=page,
                correct_triples=_triples_from_json(
                    record.get("correct_triples", [])
                ),
                incorrect_triples=_triples_from_json(
                    record.get("incorrect_triples", [])
                ),
                assignment=dict(record.get("assignment", {})),
            )
        )
    query_path = directory / "querylog.json"
    counts = Counter(
        json.loads(query_path.read_text()) if query_path.exists() else {}
    )
    schemas = tuple(
        get_schema(name) for name in meta.get("schemas", ())
    )
    if not schemas:
        raise ReproError(
            "dataset meta lists no schemas; use load_pages() for "
            "schema-free (real) page collections"
        )
    return CategoryDataset(
        name=meta["name"],
        locale=meta["locale"],
        pages=tuple(pages),
        query_log=QueryLog(counts),
        schemas=schemas,
    )


def load_pages(
    path: str | pathlib.Path,
    policy: str = "strict",
    quarantine: "Quarantine | None" = None,
) -> tuple[list[ProductPage], QueryLog]:
    """Schema-free loader for real page collections.

    Args:
        path: a ``pages.jsonl`` file, or a directory containing one
            (plus an optional ``querylog.json``).
        policy: bad-row handling — ``strict`` raises, ``repair``/
            ``drop`` skip the row (see the module docstring).
        quarantine: optional ledger skipped rows are recorded in.

    Returns:
        ``(pages, query_log)`` ready for
        :meth:`~repro.PAEPipeline.run`. Ground-truth fields in the
        records, if any, are ignored.

    Raises:
        DatasetError: under ``strict``, for a malformed row — the
            error names the file and 1-based line number.
    """
    _check_policy(policy)
    path = pathlib.Path(path)
    directory = path if path.is_dir() else path.parent
    pages_path = path / "pages.jsonl" if path.is_dir() else path
    if not pages_path.exists():
        raise ReproError(f"no pages.jsonl at {path}")
    pages: list[ProductPage] = []
    for record in iter_page_rows(
        pages_path, ("product_id", "html"), policy, quarantine
    ):
        pages.append(
            ProductPage(
                record["product_id"],
                record.get("category", "unknown"),
                record["html"],
                record.get("locale", "ja"),
            )
        )
    query_path = directory / "querylog.json"
    counts = Counter(
        json.loads(query_path.read_text()) if query_path.exists() else {}
    )
    return pages, QueryLog(counts)
