"""Product-page generation with exact ground truth.

For every generated page we know precisely which ``<product, attribute,
value>`` triples the page *states truthfully* (table rows and statement
sentences about the product itself) and which stated triples are *wrong*
(negations, secondary-product mentions, junk table rows). That split is
what the evaluation's truth sample is built from.

Triple values are canonicalized through :func:`repro.corpus.values.value_key`
so the generator, the pipeline and the evaluator agree on identity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..html.entities import encode_entities
from ..types import ProductPage, Triple
from .locales import get_style
from .schema import (
    AttributeSpec,
    CategoricalValues,
    CategorySchema,
    ValueInstance,
)
from .values import sample_value, value_key


@dataclass(frozen=True, slots=True)
class GeneratedPage:
    """A product page plus its generator-known ground truth.

    Attributes:
        page: the HTML page the pipeline sees.
        correct_triples: stated and true for this product.
        incorrect_triples: stated on the page but wrong for this product
            (negation, secondary product, junk table rows).
        assignment: the product's full attribute assignment (canonical
            attribute name -> value key), including attributes the page
            never states; useful for recall-style diagnostics the paper
            could not perform.
    """

    page: ProductPage
    correct_triples: frozenset[Triple]
    incorrect_triples: frozenset[Triple]
    assignment: dict[str, str]


class PageGenerator:
    """Renders pages for one category schema.

    Args:
        schema: the category description.
        rng: dedicated random generator (the caller owns seeding).
    """

    def __init__(self, schema: CategorySchema, rng: random.Random):
        self._schema = schema
        self._rng = rng
        self._style = get_style(schema.locale)
        self._brand_attribute = self._detect_brand_attribute()

    def _detect_brand_attribute(self) -> str | None:
        """Find the attribute whose values are the locale's brand pool.

        Titles must show the product's *real* brand — a title brand
        contradicting the description would poison the ground truth.
        """
        style_brands = set(self._style.brands)
        for attribute in self._schema.attributes:
            values = attribute.values
            if not isinstance(values, CategoricalValues):
                continue
            overlap = len(style_brands & set(values.values))
            if overlap >= len(style_brands) // 2:
                return attribute.name
        return None

    def generate(self, product_id: str) -> GeneratedPage:
        """Generate one product page."""
        rng = self._rng
        schema = self._schema
        locale = schema.locale

        assignment: dict[str, ValueInstance] = {}
        for attribute in schema.attributes:
            if rng.random() < attribute.presence_rate:
                assignment[attribute.name] = sample_value(
                    rng, attribute.values, locale
                )

        correct: set[Triple] = set()
        incorrect: set[Triple] = set()

        # The merchant's writing dialect. Table-heavy merchants cluster
        # in dialect 0, so the seed-trained tagger initially knows only
        # that phrasing and must bootstrap into the others (Figure 3's
        # coverage growth across iterations).
        dialect_count = self._style.dialect_count
        dialect = rng.randrange(dialect_count)
        # Boost chosen so the *average* over dialects stays equal to the
        # schema's table_coverage: boost = 0.6 k + 0.4 with 0.4 for the
        # other dialects.
        if dialect == 0:
            boost = 0.6 * dialect_count + 0.4
            table_probability = min(1.0, boost * schema.table_coverage)
        else:
            table_probability = 0.4 * schema.table_coverage

        table_rows: list[tuple[str, str]] = []
        has_table = rng.random() < table_probability
        if has_table:
            for attribute in schema.attributes:
                value = assignment.get(attribute.name)
                if value is None or rng.random() >= attribute.table_rate:
                    continue
                name = self._surface_name(attribute)
                if rng.random() < schema.table_variant_rate:
                    # A valid value belonging to another variant of the
                    # product (wrong triple, valid pair).
                    variant = self._different_value(attribute, value.key)
                    if variant is not None:
                        table_rows.append((name, variant.display))
                        incorrect.add(
                            Triple(product_id, attribute.name, variant.key)
                        )
                        continue
                table_rows.append((name, value.display))
                correct.add(Triple(product_id, attribute.name, value.key))
            while rng.random() < schema.table_noise_rate:
                junk_name, junk_value = rng.choice(
                    self._style.junk_table_rows
                )
                table_rows.append((junk_name, junk_value))
                incorrect.add(
                    Triple(
                        product_id,
                        junk_name,
                        value_key(junk_value, locale),
                    )
                )

        # Bare pages: the merchant wrote only boilerplate. No attribute
        # statements, no negation/secondary chatter — they bound the
        # reachable coverage like real image-only product pages do.
        bare_page = rng.random() < schema.bare_page_rate

        sentences: list[str] = []
        for attribute in schema.attributes:
            if bare_page:
                break
            value = assignment.get(attribute.name)
            if value is None or rng.random() >= attribute.text_rate:
                continue
            name = self._surface_name(attribute)
            sentences.append(
                self._style.statement(rng, name, value.display, dialect)
            )
            correct.add(Triple(product_id, attribute.name, value.key))

        if (
            not bare_page
            and assignment
            and rng.random() < schema.compact_spec_rate
        ):
            # A spec line of bare values: truthful, but offering the
            # tagger no attribute-name context.
            listed = sorted(assignment)
            rng.shuffle(listed)
            upper = min(3, len(listed))
            chosen = listed[: rng.randint(min(2, upper), upper)]
            chosen_values = [assignment[name] for name in chosen]
            sentences.append(
                self._style.compact(
                    rng,
                    [value.display for value in chosen_values],
                    self._noun(),
                )
            )
            for name, value in zip(chosen, chosen_values):
                correct.add(Triple(product_id, name, value.key))

        if not bare_page and rng.random() < schema.negation_rate and assignment:
            attribute_name = rng.choice(sorted(assignment))
            attribute = schema.attribute(attribute_name)
            other_value = self._different_value(
                attribute, assignment[attribute_name].key
            )
            if other_value is not None:
                sentences.append(
                    self._style.negation(
                        rng, self._surface_name(attribute), other_value.display
                    )
                )
                incorrect.add(
                    Triple(product_id, attribute.name, other_value.key)
                )

        if (
            not bare_page
            and rng.random() < schema.secondary_product_rate
            and assignment
        ):
            attribute_name = rng.choice(sorted(assignment))
            attribute = schema.attribute(attribute_name)
            other_value = self._different_value(
                attribute, assignment[attribute_name].key
            )
            if other_value is not None:
                other_title = self._style.title(
                    rng, self._noun(), self._model_code()
                )
                sentences.append(
                    self._style.secondary(
                        rng,
                        self._surface_name(attribute),
                        other_value.display,
                        other_title,
                    )
                )
                incorrect.add(
                    Triple(product_id, attribute.name, other_value.key)
                )

        low, high = schema.filler_sentences
        for _ in range(rng.randint(low, high)):
            sentences.append(self._style.filler(rng))

        if sentences and rng.random() < schema.markup_noise_rate:
            index = rng.randrange(len(sentences))
            fragment = rng.choice(self._style.markup_noise)
            sentences[index] = f"{sentences[index]} {fragment}"

        rng.shuffle(sentences)
        brand_value = (
            assignment.get(self._brand_attribute)
            if self._brand_attribute is not None
            else None
        )
        # Only some merchants write type-bearing titles ("robotto
        # sojiki"); bare-page merchants rarely do. The rest use generic
        # nouns, which keeps title-only coverage below 100%.
        typed_title_rate = 0.2 if bare_page else 0.5
        use_typed_noun = rng.random() < typed_title_rate
        noun = self._noun(assignment if use_typed_noun else None)
        noun_attribute = self._schema.title_noun_attribute
        if (
            use_typed_noun
            and noun_attribute is not None
            and noun_attribute in assignment
        ):
            # The noun embeds the type attribute's value — a true,
            # extractable statement.
            correct.add(
                Triple(
                    product_id,
                    noun_attribute,
                    assignment[noun_attribute].key,
                )
            )
        # A third of merchants write brandless titles (most bare-page
        # merchants do); the rest show the product's real brand (a
        # true, extractable statement).
        brandless_rate = 0.8 if bare_page else 0.35
        if brand_value is not None and rng.random() >= brandless_rate:
            title = self._style.title(
                rng, noun, self._model_code(), brand=brand_value.display
            )
            correct.add(
                Triple(product_id, self._brand_attribute, brand_value.key)
            )
        else:
            title = f"{noun} {self._model_code()}"
        html = self._render_html(title, sentences, table_rows)
        page = ProductPage(product_id, schema.name, html, locale)
        return GeneratedPage(
            page=page,
            correct_triples=frozenset(correct),
            incorrect_triples=frozenset(incorrect),
            assignment={
                name: value.key for name, value in assignment.items()
            },
        )

    def _surface_name(self, attribute: AttributeSpec) -> str:
        """Pick the attribute name a merchant writes (canonical-heavy)."""
        names = attribute.all_names()
        weights = [3.0] + [1.0] * (len(names) - 1)
        return self._rng.choices(names, weights=weights, k=1)[0]

    def _different_value(
        self, attribute: AttributeSpec, current_key: str
    ) -> ValueInstance | None:
        """Sample a value of the attribute differing from ``current_key``."""
        for _ in range(8):
            candidate = sample_value(
                self._rng, attribute.values, self._schema.locale
            )
            if candidate.key != current_key:
                return candidate
        return None

    def _noun(
        self, assignment: dict[str, ValueInstance] | None = None
    ) -> str:
        """Title noun; reflects the type attribute's value when aligned."""
        noun_attribute = self._schema.title_noun_attribute
        if (
            assignment is not None
            and noun_attribute is not None
            and noun_attribute in assignment
        ):
            value = assignment[noun_attribute].display
            suffix = self._schema.title_noun_suffix
            return f"{value}{suffix}" if suffix else value
        nouns = self._schema.title_nouns or (self._schema.name,)
        return self._rng.choice(nouns)

    def _model_code(self) -> str:
        letters = "".join(
            self._rng.choice("ABCDEFGHKLMNPRSTVX") for _ in range(2)
        )
        return f"{letters}-{self._rng.randint(100, 999)}"

    def _render_html(
        self,
        title: str,
        sentences: list[str],
        table_rows: list[tuple[str, str]],
    ) -> str:
        """Assemble the page HTML (title, paragraphs, optional table)."""
        parts = [
            "<html><head><title>",
            encode_entities(title),
            "</title></head><body>",
        ]
        for sentence in sentences:
            parts.append(f"<p>{encode_entities(sentence)}</p>")
        if table_rows:
            parts.append("<table>")
            for name, value in table_rows:
                parts.append(
                    "<tr><td>"
                    + encode_entities(name)
                    + "</td><td>"
                    + encode_entities(value)
                    + "</td></tr>"
                )
            parts.append("</table>")
        parts.append("</body></html>")
        return "".join(parts)
