"""Category schemas: the generator's declarative description of a domain.

A :class:`CategorySchema` lists the attributes of a (homogeneous, per
Definition 3.1 of the paper) category, how merchants surface them, and
the category-level noise knobs that drive the paper's per-category
differences (e.g. Garden's noisy tables and thin descriptions vs Ladies
Bags' rich, well-tabled pages).

Value generators produce :class:`ValueInstance` objects carrying both a
display string (what the merchant writes) and the canonical token tuple
(what the tokenizer sees); the token form is the value identity used
throughout the pipeline and the ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence, Union

from ..errors import SchemaError


@dataclass(frozen=True, slots=True)
class ValueInstance:
    """One concrete attribute value.

    Attributes:
        display: merchant-facing rendering (``"2.5kg"``).
        tokens: canonical token tuple under the category locale's
            tokenizer (``("2", ".", "5", "kg")`` for ja).
    """

    display: str
    tokens: tuple[str, ...]

    @property
    def key(self) -> str:
        """Canonical value identity: space-joined tokens."""
        return " ".join(self.tokens)


@dataclass(frozen=True, slots=True)
class CategoricalValues:
    """A closed vocabulary of (possibly multiword) values.

    Attributes:
        values: candidate value strings; multiword values use spaces.
        zipf: skew of the sampling distribution. ``0`` is uniform; the
            default mimics the head-heavy value popularity of real
            catalogs (which the unpopularity veto rule relies on).
    """

    values: tuple[str, ...]
    zipf: float = 0.8

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError("CategoricalValues needs at least one value")
        if self.zipf < 0:
            raise SchemaError("zipf skew must be >= 0")


@dataclass(frozen=True, slots=True)
class NumericValues:
    """Numeric values with a unit, e.g. weights or capacities.

    The integer/decimal mix is the lever behind the paper's
    diversification case study (§VIII-A): when ``decimal_rate`` is
    moderate, decimals are real but rarer than integers, so a
    frequency-ranked seed contains none of them.

    Attributes:
        low, high: inclusive integer range of the magnitude.
        unit: unit token appended after the number (``"kg"``).
        decimal_rate: probability a value carries one decimal place.
        thousands_rate: probability a large value is written with a
            thousands separator (``2,430``); only applied when the
            magnitude is >= 1000.
        step: granularity of integer magnitudes.
    """

    low: int
    high: int
    unit: str
    decimal_rate: float = 0.0
    thousands_rate: float = 0.0
    step: int = 1

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SchemaError("NumericValues requires low <= high")
        if not self.unit:
            raise SchemaError("NumericValues requires a unit")
        for name in ("decimal_rate", "thousands_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SchemaError(f"{name} must be in [0, 1]")
        if self.step < 1:
            raise SchemaError("step must be >= 1")


@dataclass(frozen=True, slots=True)
class CompositeValues:
    """Pattern-based complex values, e.g. shutter-speed ranges.

    Patterns are strings over literal tokens plus the placeholders
    ``{n}`` and ``{m}``, each replaced by an integer drawn from ``low`` /
    ``high``. Example pattern: ``"1/{n} byo ~ {m} byo"``.

    Attributes:
        patterns: candidate patterns, sampled with head-skew like
            categorical values.
        low, high: inclusive range for placeholder integers.
    """

    patterns: tuple[str, ...]
    low: int = 1
    high: int = 4000

    def __post_init__(self) -> None:
        if not self.patterns:
            raise SchemaError("CompositeValues needs at least one pattern")
        if self.low > self.high:
            raise SchemaError("CompositeValues requires low <= high")


ValueSpec = Union[CategoricalValues, NumericValues, CompositeValues]


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """One attribute of a category, with merchant-behaviour knobs.

    Attributes:
        name: canonical attribute name (locale-flavored, e.g. ``juryo``).
        values: value generator specification.
        aliases: alternative names used by some merchants; drives the
            attribute-aggregation module (redundant names, §V-A).
        presence_rate: probability a product has this attribute at all.
        table_rate: probability a *present* attribute appears in the
            page's dictionary table (when the page has one).
        text_rate: probability a *present* attribute is stated in the
            free-text description.
        confusable_with: name of a sibling attribute with near-identical
            value range (``yukogaso`` vs ``sogaso``); used only by
            analysis tooling, the generator itself just hosts both.
    """

    name: str
    values: ValueSpec
    aliases: tuple[str, ...] = ()
    presence_rate: float = 0.9
    table_rate: float = 0.75
    text_rate: float = 0.6
    confusable_with: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        for rate_name in ("presence_rate", "table_rate", "text_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise SchemaError(
                    f"{self.name}: {rate_name} must be in [0, 1]"
                )
        if self.name in self.aliases:
            raise SchemaError(
                f"{self.name}: aliases must not repeat the canonical name"
            )

    def all_names(self) -> tuple[str, ...]:
        """Canonical name followed by all aliases."""
        return (self.name, *self.aliases)


@dataclass(frozen=True, slots=True)
class CategorySchema:
    """Full generator description of one category.

    The noise knobs map one-to-one onto the paper's qualitative error
    sources (Section VIII):

    * ``table_coverage`` — fraction of pages with a dictionary table;
      spans 1% (Garden) to ~40% (Ladies Bags) in the paper.
    * ``table_noise_rate`` — probability of a junk row in a table
      (symbol runs, disclaimers); lowers seed *pair* precision.
    * ``table_variant_rate`` — probability that a table row states a
      *valid* value that belongs to a colour/size variant rather than
      the product sold; lowers seed *triple* precision while leaving
      pair precision intact (the Table I gap).
    * ``secondary_product_rate`` — description mentions another product
      with its own attribute values (error source 1, §VIII).
    * ``negation_rate`` — "this product does not include ..." sentences
      (Definition 3.1's negation example).
    * ``markup_noise_rate`` — literal markup fragments leaking into the
      visible text; the markup veto rule exists for these.
    * ``filler_sentences`` — (min, max) count of attribute-free filler
      sentences, i.e. description richness.
    * ``bare_page_rate`` — fraction of merchants whose description is
      pure boilerplate (no attribute statement in text, usually no
      brand in the title). Real catalogs are full of image-only pages;
      these bound the reachable product coverage below 100%.
    * ``compact_spec_rate`` — probability of a spec line listing bare
      values with no attribute names ("aka hana gata uekibachi"). The
      tagger must label these from value identity alone, which is the
      entry point for cross-attribute semantic drift (§VIII-B's
      color/flower-shape confusion).
    """

    name: str
    locale: str
    attributes: tuple[AttributeSpec, ...]
    table_coverage: float = 0.25
    table_noise_rate: float = 0.04
    table_variant_rate: float = 0.03
    secondary_product_rate: float = 0.06
    negation_rate: float = 0.04
    markup_noise_rate: float = 0.05
    bare_page_rate: float = 0.12
    compact_spec_rate: float = 0.15
    filler_sentences: tuple[int, int] = (2, 5)
    title_nouns: tuple[str, ...] = ()
    # When set, the title noun reflects this attribute's true value
    # ("robotto sojiki" for a robot vacuum) instead of a random noun —
    # real titles describe the product they sell.
    title_noun_attribute: str | None = None
    title_noun_suffix: str = ""

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(f"{self.name}: needs at least one attribute")
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"{self.name}: duplicate attribute names")
        all_names: set[str] = set()
        for attribute in self.attributes:
            for alias in attribute.all_names():
                if alias in all_names:
                    raise SchemaError(
                        f"{self.name}: name {alias!r} used by two attributes"
                    )
                all_names.add(alias)
        for rate_name in (
            "table_coverage",
            "table_noise_rate",
            "table_variant_rate",
            "secondary_product_rate",
            "negation_rate",
            "markup_noise_rate",
            "bare_page_rate",
            "compact_spec_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise SchemaError(
                    f"{self.name}: {rate_name} must be in [0, 1]"
                )
        low, high = self.filler_sentences
        if low < 0 or high < low:
            raise SchemaError(f"{self.name}: bad filler_sentences range")
        for attribute in self.attributes:
            confusable = attribute.confusable_with
            if confusable is not None and confusable not in names:
                raise SchemaError(
                    f"{self.name}: {attribute.name} confusable_with "
                    f"unknown attribute {confusable!r}"
                )
        if (
            self.title_noun_attribute is not None
            and self.title_noun_attribute not in names
        ):
            raise SchemaError(
                f"{self.name}: title_noun_attribute "
                f"{self.title_noun_attribute!r} is not an attribute"
            )

    def attribute(self, name: str) -> AttributeSpec:
        """Look up an attribute spec by canonical name."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise KeyError(name)

    def attribute_names(self) -> tuple[str, ...]:
        """Canonical attribute names in schema order."""
        return tuple(attribute.name for attribute in self.attributes)


def zipf_weights(count: int, skew: float) -> list[float]:
    """Head-skewed sampling weights: ``1 / rank**skew`` (unnormalized)."""
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


def weighted_choice(
    rng: random.Random, items: Sequence[str], skew: float
) -> str:
    """Draw one item with Zipf-like head skew over the given order."""
    return rng.choices(items, weights=zipf_weights(len(items), skew), k=1)[0]
