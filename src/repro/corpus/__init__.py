"""Synthetic e-commerce marketplace — the data substrate.

The paper evaluates on proprietary Rakuten product pages. This package
is the documented substitute (see DESIGN.md §1): a deterministic
generator of product pages that reproduces every corpus property the
pipeline's behaviour depends on — dictionary-table seed coverage,
merchant attribute-name aliases, value-format skew (integer vs decimal
weights, thousands separators), confusable attribute pairs, negations,
secondary-product mentions, markup noise and noisy table rows.

Entry points:

* :func:`category_names` / :func:`get_schema` — the 21 paper categories
  (18 ``ja``, 3 ``de``) plus the heterogeneous Baby Goods study.
* :class:`Marketplace` — generate a :class:`CategoryDataset` (pages with
  exact ground truth, plus a query log) for a category.
* :class:`GeneratedPageSource` / :class:`JsonlPageSource` /
  :class:`MaterializedPageSource` — lazy shard-by-shard page streams
  for bounded-memory runs (``stream.py``).
"""

from .categories import category_names, get_schema, schemas_for_locale
from .dirt import DIRT_CHECKS, DIRT_KINDS, DirtReport, dirty_pages
from .io import iter_page_rows
from .marketplace import CategoryDataset, GeneratedPage, Marketplace
from .querylog import QueryLog
from .stream import (
    GeneratedPageSource,
    JsonlPageSource,
    MaterializedPageSource,
    PageSource,
)
from .schema import (
    AttributeSpec,
    CategoricalValues,
    CategorySchema,
    CompositeValues,
    NumericValues,
    ValueInstance,
)

__all__ = [
    "AttributeSpec",
    "CategoricalValues",
    "CategoryDataset",
    "CategorySchema",
    "CompositeValues",
    "DIRT_CHECKS",
    "DIRT_KINDS",
    "DirtReport",
    "GeneratedPage",
    "GeneratedPageSource",
    "JsonlPageSource",
    "MaterializedPageSource",
    "PageSource",
    "dirty_pages",
    "iter_page_rows",
    "Marketplace",
    "NumericValues",
    "QueryLog",
    "ValueInstance",
    "category_names",
    "get_schema",
    "schemas_for_locale",
]
