"""Seeded corruption of generated pages — the dirty-corpus generator.

The marketplace generator produces *plausible* noise (merchant markup
quirks the pipeline must extract through). This module produces
*damage*: the pathologies of real crawled corpora that the ingest gate
must contain. Each dirt kind is engineered to trip exactly one gate
check, so chaos tests can assert the quarantine/repair ledger matches
the injection ledger entry-for-entry:

=================  ====================  =========================
dirt kind          gate check            gate disposition
=================  ====================  =========================
``truncate``       ``truncated_markup``  repairable (cut the scar)
``unclosed_tags``  ``unclosed_tags``     repairable (close them)
``entity_garbage`` ``entity_garbage``    repairable (strip them)
``mojibake``       ``mojibake``          repairable (strip U+FFFD)
``duplicate_id``   ``duplicate_id``      quarantined always
``megapage``       ``page_bytes``        quarantined always
=================  ====================  =========================

Everything flows from one ``random.Random(seed)``: the same pages,
rate and seed produce the same dirty corpus and the same
:class:`DirtReport`, which is what makes a 20 %-dirt bootstrap run
checkpoint/resume bit-identically.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigError
from ..types import ProductPage

#: All corruption kinds, in round-robin assignment order.
DIRT_KINDS = (
    "truncate",
    "unclosed_tags",
    "entity_garbage",
    "mojibake",
    "duplicate_id",
    "megapage",
)

#: Which ingest-gate check each dirt kind trips.
DIRT_CHECKS = {
    "truncate": "truncated_markup",
    "unclosed_tags": "unclosed_tags",
    "entity_garbage": "entity_garbage",
    "mojibake": "mojibake",
    "duplicate_id": "duplicate_id",
    "megapage": "page_bytes",
}

#: Dirt kinds whose damage the ``repair`` policy can normalize away.
REPAIRABLE_KINDS = frozenset(
    {"truncate", "unclosed_tags", "entity_garbage", "mojibake"}
)

#: Nested opens appended by ``unclosed_tags`` — over the gate's default
#: unclosed threshold (12), under its DOM depth bound (100).
_UNCLOSED_BURST = 24

#: Malformed entity soup appended by ``entity_garbage`` — ~3 bad
#: references per unit, 8 units: safely over the default threshold (16).
_ENTITY_SOUP = "&#zz;&;&&" * 8

#: Alphanumeric bytes smashed to 0xFF by ``mojibake``.
_MOJIBAKE_BYTES = 24

#: Default size ``megapage`` inflates to — over the gate's default
#: ``max_page_bytes`` (1 MB).
_MEGAPAGE_BYTES = 1_500_000

_TAG_OPEN_RE = re.compile(r"<[a-zA-Z/]")


@dataclass(frozen=True)
class DirtReport:
    """Ledger of injected corruption — the test oracle.

    Attributes:
        applied: ``{kind: (page ids...)}`` of every corruption applied.
            For ``duplicate_id`` the id is the duplicated product's.
        rate: requested dirty fraction.
        seed: RNG seed the corruption flowed from.
    """

    applied: dict[str, tuple[str, ...]] = field(default_factory=dict)
    rate: float = 0.0
    seed: int = 0

    def counts(self) -> dict[str, int]:
        """``{dirt kind: pages corrupted}``."""
        return {
            kind: len(ids) for kind, ids in self.applied.items() if ids
        }

    def expected_checks(self) -> dict[str, int]:
        """``{gate check: count}`` the ingest gate must report.

        Under ``drop`` this is the expected quarantine census; under
        ``repair`` the repairable rows move to the repaired census and
        the rest stay quarantined.
        """
        expected: dict[str, int] = {}
        for kind, ids in self.applied.items():
            if not ids:
                continue
            check = DIRT_CHECKS[kind]
            expected[check] = expected.get(check, 0) + len(ids)
        return expected

    @property
    def total(self) -> int:
        return sum(len(ids) for ids in self.applied.values())


def dirty_pages(
    pages: Sequence[ProductPage],
    rate: float,
    seed: int = 0,
    kinds: Sequence[str] = DIRT_KINDS,
    megapage_bytes: int = _MEGAPAGE_BYTES,
) -> tuple[list[ProductPage], DirtReport]:
    """Corrupt a deterministic fraction of ``pages``.

    Victims are sampled without replacement from the seeded RNG and
    kinds are assigned round-robin (shuffled once per call), so every
    requested kind appears as soon as the victim count allows.
    ``duplicate_id`` *appends* a copy rather than replacing a page, so
    the returned corpus can be longer than the input.

    Args:
        pages: the clean corpus.
        rate: fraction of pages to corrupt, in [0, 1].
        seed: RNG seed; same inputs + seed → same dirty corpus.
        kinds: subset of :data:`DIRT_KINDS` to draw from.
        megapage_bytes: size the ``megapage`` kind inflates to.

    Returns:
        ``(dirty_pages, report)`` — the corrupted corpus (input order
        preserved, duplicates appended at the end) and the injection
        ledger.
    """
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"dirt rate must be in [0, 1], got {rate!r}")
    unknown = [kind for kind in kinds if kind not in DIRT_KINDS]
    if unknown:
        raise ConfigError(
            f"unknown dirt kinds {unknown!r}; known: {DIRT_KINDS}"
        )
    if not kinds:
        raise ConfigError("at least one dirt kind is required")

    rng = random.Random(seed)
    result = list(pages)
    applied: dict[str, list[str]] = {kind: [] for kind in kinds}
    count = round(len(result) * rate)
    if count > 0:
        victims = rng.sample(range(len(result)), min(count, len(result)))
        cycle = list(kinds)
        rng.shuffle(cycle)
        duplicates: list[ProductPage] = []
        for slot, index in enumerate(victims):
            kind = cycle[slot % len(cycle)]
            page = result[index]
            if kind == "duplicate_id":
                duplicates.append(page)
            else:
                result[index] = ProductPage(
                    product_id=page.product_id,
                    category=page.category,
                    html=_corrupt(
                        page.html, kind, rng, megapage_bytes
                    ),
                    locale=page.locale,
                )
            applied[kind].append(page.product_id)
        result.extend(duplicates)
    report = DirtReport(
        applied={kind: tuple(ids) for kind, ids in applied.items()},
        rate=rate,
        seed=seed,
    )
    return result, report


def _corrupt(
    html: str, kind: str, rng: random.Random, megapage_bytes: int
) -> str:
    if kind == "truncate":
        return _truncate(html, rng)
    if kind == "unclosed_tags":
        return html + "<div>" * _UNCLOSED_BURST
    if kind == "entity_garbage":
        return html + _ENTITY_SOUP
    if kind == "mojibake":
        return _mangle_encoding(html, rng)
    if kind == "megapage":
        deficit = megapage_bytes - len(html.encode("utf-8"))
        return html + "<div>" + "x" * max(deficit, 1) + "</div>"
    raise ConfigError(f"unhandled dirt kind {kind!r}")


def _truncate(html: str, rng: random.Random) -> str:
    """Cut the document mid-tag, leaving an unterminated-tag scar."""
    starts = [
        match.start()
        for match in _TAG_OPEN_RE.finditer(html)
        if match.start() > len(html) // 2
    ]
    if not starts:
        starts = [
            match.start() for match in _TAG_OPEN_RE.finditer(html)
        ]
    if not starts:
        # No tags at all: append a scar instead of cutting.
        return html + "<di"
    pick = rng.choice(starts)
    # Keep at least one letter of the tag name so the scar is
    # recognizably a tag start, never just "<" or "</".
    cut = pick + (3 if html[pick + 1] == "/" else 2)
    return html[:cut]


def _mangle_encoding(html: str, rng: random.Random) -> str:
    """Smash text-content bytes to 0xFF and decode with replacement.

    Only alphanumeric bytes *outside* tags and entity references are
    smashed, so the damage decodes to U+FFFD replacement characters
    without breaking markup structure — the page trips the gate's
    ``mojibake`` check and nothing else, even after repair strips the
    replacement characters back out.
    """
    raw = bytearray(html.encode("utf-8"))
    candidates: list[int] = []
    in_tag = False
    entity_left = 0
    for index, value in enumerate(raw):
        if value == 0x3C:  # <
            in_tag = True
            continue
        if value == 0x3E:  # >
            in_tag = False
            continue
        if value == 0x26:  # & — skip a potential entity reference
            entity_left = 10
            continue
        if entity_left:
            entity_left = 0 if value == 0x3B else entity_left - 1  # ;
            continue
        if in_tag:
            continue
        if (
            0x30 <= value <= 0x39
            or 0x41 <= value <= 0x5A
            or 0x61 <= value <= 0x7A
        ):
            candidates.append(index)
    if not candidates:
        return html + "�"
    for index in rng.sample(
        candidates, min(_MOJIBAKE_BYTES, len(candidates))
    ):
        raw[index] = 0xFF
    return raw.decode("utf-8", errors="replace")
