"""HTML entity encoding and decoding.

Only the entities that actually occur in product-page markup are mapped;
numeric character references are fully supported. Unknown named entities
are left verbatim, matching the lenient philosophy of the substrate.
"""

from __future__ import annotations

import re

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",  # plain space: NBSP would glue tokens
    "times": "×",
    "deg": "°",
    "yen": "¥",
    "euro": "€",
    "middot": "·",
    "hellip": "…",
    "mdash": "—",
    "ndash": "–",
    "uuml": "ü",
    "ouml": "ö",
    "auml": "ä",
    "Uuml": "Ü",
    "Ouml": "Ö",
    "Auml": "Ä",
    "szlig": "ß",
}

_REVERSE_ENTITIES = {"&": "amp", "<": "lt", ">": "gt", '"': "quot"}

_ENTITY_RE = re.compile(r"&(#x?[0-9a-fA-F]+|[a-zA-Z][a-zA-Z0-9]*);")


def _decode_one(match: re.Match[str]) -> str:
    body = match.group(1)
    if body.startswith("#"):
        try:
            if body[1:2] in ("x", "X"):
                code = int(body[2:], 16)
            else:
                code = int(body[1:], 10)
        except ValueError:
            return match.group(0)
        if 0 < code <= 0x10FFFF:
            return chr(code)
        return match.group(0)
    return _NAMED_ENTITIES.get(body, match.group(0))


def decode_entities(text: str) -> str:
    """Replace entity references in ``text`` with their characters.

    Unknown named entities and malformed numeric references are returned
    unchanged rather than raising, since merchant HTML contains plenty of
    stray ampersands.
    """
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_decode_one, text)


def encode_entities(text: str) -> str:
    """Escape the characters that would break markup (&, <, >, ``"``)."""
    out: list[str] = []
    for char in text:
        name = _REVERSE_ENTITIES.get(char)
        out.append(f"&{name};" if name else char)
    return "".join(out)
