"""Tokenizer for the lenient HTML parser.

Splits markup into start tags, end tags, comments and text runs. Attribute
strings are parsed into a dict; values may be double-quoted, single-quoted
or bare. Anything that does not look like a tag is treated as text, so a
lone ``<`` in a product description survives as data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

_TAG_OPEN_RE = re.compile(r"<(/?)([a-zA-Z][a-zA-Z0-9]*)")
_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)      # attribute name
        (?:\s*=\s*
            (?:"([^"]*)"|'([^']*)'|([^\s>]+))  # "v" | 'v' | bare
        )?""",
    re.VERBOSE,
)

#: Tags that never have content and need no end tag.
VOID_TAGS = frozenset({"br", "hr", "img", "input", "meta", "link", "wbr"})


@dataclass(frozen=True, slots=True)
class HtmlToken:
    """One lexical unit of an HTML document.

    Attributes:
        kind: ``"start"``, ``"end"``, ``"text"`` or ``"comment"``.
        value: tag name (lowercased) for tags, raw text otherwise.
        attrs: attribute mapping, only populated for start tags.
        self_closing: True for ``<tag/>`` and void tags.
    """

    kind: str
    value: str
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


def _parse_attrs(raw: str) -> dict[str, str]:
    attrs: dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group(1).lower()
        value = match.group(2) or match.group(3) or match.group(4) or ""
        attrs[name] = value
    return attrs


def tokenize_html(markup: str) -> Iterator[HtmlToken]:
    """Yield :class:`HtmlToken` objects for ``markup``.

    The lexer never raises on malformed input: a ``<`` that does not
    start a recognizable tag is emitted as text, and an unterminated tag
    consumes the remainder of the document as that tag.
    """
    pos = 0
    length = len(markup)
    while pos < length:
        lt = markup.find("<", pos)
        if lt == -1:
            yield HtmlToken("text", markup[pos:])
            return
        if lt > pos:
            yield HtmlToken("text", markup[pos:lt])
        if markup.startswith("<!--", lt):
            end = markup.find("-->", lt + 4)
            if end == -1:
                yield HtmlToken("comment", markup[lt + 4:])
                return
            yield HtmlToken("comment", markup[lt + 4:end])
            pos = end + 3
            continue
        match = _TAG_OPEN_RE.match(markup, lt)
        if match is None:
            # A bare '<' inside text (e.g. "weight < 5kg").
            yield HtmlToken("text", "<")
            pos = lt + 1
            continue
        gt = markup.find(">", match.end())
        if gt == -1:
            # Unterminated tag: treat the rest as the tag body.
            gt = length
        closing, name = match.group(1), match.group(2).lower()
        body = markup[match.end():gt]
        if closing:
            yield HtmlToken("end", name)
        else:
            self_closing = body.rstrip().endswith("/") or name in VOID_TAGS
            attrs = _parse_attrs(body.rstrip().rstrip("/"))
            yield HtmlToken("start", name, attrs, self_closing)
        pos = gt + 1
