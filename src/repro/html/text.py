"""Visible-text extraction from product pages.

The tagger operates on the *free text* of a page — title and description —
not on table cells (those feed the seed extractor instead). Block-level
boundaries are preserved so the sentence splitter never glues two
paragraphs into one sentence.
"""

from __future__ import annotations

from .dom import Element, Text
from .parser import parse_html

#: Elements whose contents start a new text block.
_BLOCK_TAGS = frozenset(
    {
        "p", "div", "li", "ul", "ol", "h1", "h2", "h3", "h4", "h5", "h6",
        "title", "br", "tr", "td", "th", "table", "section", "article",
        "header", "footer",
    }
)

#: Elements whose text never reaches the reader.
_SKIP_TAGS = frozenset({"script", "style", "table"})


def extract_text_blocks(
    markup_or_root: str | Element,
    *,
    skip_tables: bool = True,
) -> list[str]:
    """Return the visible text of a document as a list of blocks.

    Args:
        markup_or_root: raw HTML or a parsed tree.
        skip_tables: when True (the default, matching the pipeline),
            table contents are excluded — they are semi-structured data
            handled by the seed extractor, not free text.

    Returns:
        Non-empty, whitespace-normalized text blocks in document order.
    """
    root = (
        parse_html(markup_or_root)
        if isinstance(markup_or_root, str)
        else markup_or_root
    )
    skip = _SKIP_TAGS if skip_tables else frozenset({"script", "style"})
    blocks: list[str] = []
    current: list[str] = []

    def flush() -> None:
        text = " ".join("".join(current).split())
        if text:
            blocks.append(text)
        current.clear()

    def walk(element: Element) -> None:
        for child in element.children:
            if isinstance(child, Text):
                current.append(child.data)
                continue
            if child.tag in skip:
                continue
            is_block = child.tag in _BLOCK_TAGS
            if is_block:
                flush()
            walk(child)
            if is_block:
                flush()

    walk(root)
    flush()
    return blocks


def extract_title(markup_or_root: str | Element) -> str:
    """Return the page title (``<title>`` or first ``<h1>``), or ``""``."""
    root = (
        parse_html(markup_or_root)
        if isinstance(markup_or_root, str)
        else markup_or_root
    )
    for tag in ("title", "h1"):
        element = root.find(tag)
        if element is not None:
            return " ".join(element.text_content().split())
    return ""
