"""Minimal, lenient HTML substrate.

Product pages are rarely valid HTML, so this parser is deliberately
forgiving: unknown entities pass through, unclosed tags are auto-closed,
and stray ``</...>`` tags are dropped. The pipeline needs exactly three
capabilities, all exported here:

* :func:`parse_html` — build a DOM tree from markup;
* :func:`extract_dictionary_tables` — find the 2-row/2-column
  "dictionary" tables the seed extractor mines (Section V-A);
* :func:`extract_text_blocks` — pull visible free text, preserving block
  boundaries so the sentence splitter sees them.
"""

from .dom import Element, Node, Text
from .entities import decode_entities, encode_entities
from .lexer import HtmlToken, tokenize_html
from .parser import parse_html
from .tables import DictionaryTable, extract_dictionary_tables, extract_tables
from .text import extract_text_blocks, extract_title

__all__ = [
    "DictionaryTable",
    "Element",
    "HtmlToken",
    "Node",
    "Text",
    "decode_entities",
    "encode_entities",
    "extract_dictionary_tables",
    "extract_tables",
    "extract_text_blocks",
    "extract_title",
    "parse_html",
    "tokenize_html",
]
