"""Tiny DOM tree used by the HTML substrate.

Two node types: :class:`Element` (tag + attrs + children) and
:class:`Text`. Traversal helpers cover exactly what the table extractor
and text extractor need — ``find_all``, ``direct_children`` and
``text_content``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

Node = Union["Element", "Text"]


@dataclass(slots=True)
class Text:
    """A run of character data."""

    data: str

    def text_content(self) -> str:
        return self.data


@dataclass(slots=True)
class Element:
    """An element node with ordered children."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list[Node] = field(default_factory=list)

    def append(self, node: Node) -> None:
        self.children.append(node)

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iterator over element descendants,
        including this element."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, tag: str) -> list["Element"]:
        """All descendant elements (including self) with the given tag."""
        return [element for element in self.iter() if element.tag == tag]

    def find(self, tag: str) -> "Element | None":
        """First descendant element with the given tag, or None."""
        for element in self.iter():
            if element.tag == tag:
                return element
        return None

    def direct_children(self, tag: str) -> list["Element"]:
        """Immediate child elements with the given tag."""
        return [
            child
            for child in self.children
            if isinstance(child, Element) and child.tag == tag
        ]

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        _collect_text(self, parts)
        return "".join(parts)


def _collect_text(element: Element, parts: list[str]) -> None:
    for child in element.children:
        if isinstance(child, Text):
            parts.append(child.data)
        else:
            _collect_text(child, parts)
