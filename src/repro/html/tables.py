"""Table extraction, including the paper's "dictionary" tables.

Section V-A mines the initial seed from HTML tables *with a dictionary
structure*: 2 columns and n rows (attribute name in the first cell, value
in the second) or 2 rows and n columns (names in the first row, values in
the second). :func:`extract_dictionary_tables` detects both orientations
and normalizes them to ``(name, value)`` pair lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dom import Element
from .parser import parse_html


@dataclass(frozen=True, slots=True)
class DictionaryTable:
    """A dictionary-form table reduced to its attribute/value pairs.

    Attributes:
        pairs: ``(name, value)`` tuples in document order.
        orientation: ``"columns"`` for 2-column/n-row tables,
            ``"rows"`` for 2-row/n-column tables.
    """

    pairs: tuple[tuple[str, str], ...]
    orientation: str


def _cell_text(cell: Element) -> str:
    return " ".join(cell.text_content().split())


def _table_grid(table: Element) -> list[list[str]]:
    """Flatten a ``<table>`` element to a row-major grid of cell texts."""
    grid: list[list[str]] = []
    for row in table.find_all("tr"):
        cells = [
            child
            for child in row.children
            if isinstance(child, Element) and child.tag in ("td", "th")
        ]
        if cells:
            grid.append([_cell_text(cell) for cell in cells])
    return grid


def extract_tables(markup_or_root: str | Element) -> list[list[list[str]]]:
    """Return every table in the document as a row-major text grid."""
    root = (
        parse_html(markup_or_root)
        if isinstance(markup_or_root, str)
        else markup_or_root
    )
    return [_table_grid(table) for table in root.find_all("table")]


def _dictionary_from_grid(grid: list[list[str]]) -> DictionaryTable | None:
    """Interpret a grid as a dictionary table if its shape allows.

    A 2-column grid maps each row to a pair; a 2-row grid maps each
    column. Pairs with an empty name or value are skipped; a grid
    yielding no pairs is not a dictionary table.
    """
    if not grid:
        return None
    pairs: list[tuple[str, str]] = []
    if all(len(row) == 2 for row in grid) and len(grid) >= 1:
        orientation = "columns"
        for name, value in grid:
            if name and value:
                pairs.append((name, value))
    elif len(grid) == 2 and len(grid[0]) == len(grid[1]) and len(grid[0]) > 1:
        orientation = "rows"
        for name, value in zip(grid[0], grid[1]):
            if name and value:
                pairs.append((name, value))
    else:
        return None
    if not pairs:
        return None
    return DictionaryTable(tuple(pairs), orientation)


def extract_dictionary_tables(
    markup_or_root: str | Element,
) -> list[DictionaryTable]:
    """Find all dictionary-form tables in a document.

    Args:
        markup_or_root: raw HTML or an already-parsed tree.

    Returns:
        One :class:`DictionaryTable` per table whose shape matches either
        dictionary orientation, in document order.
    """
    root = (
        parse_html(markup_or_root)
        if isinstance(markup_or_root, str)
        else markup_or_root
    )
    found: list[DictionaryTable] = []
    for table in root.find_all("table"):
        dictionary = _dictionary_from_grid(_table_grid(table))
        if dictionary is not None:
            found.append(dictionary)
    return found
