"""Lenient tree construction on top of the HTML lexer.

Recovery rules (a small subset of the HTML5 algorithm, enough for
merchant markup):

* an end tag with no matching open tag is dropped;
* an end tag matching a non-top open tag closes everything above it
  (auto-closing, e.g. an unclosed ``<td>`` closed by ``</tr>``);
* ``<tr>``/``<td>``/``<th>``/``<li>``/``<p>`` implicitly close a
  same-tag sibling;
* at end of input all remaining open tags are closed.

Recovery is bounded, not unconditional: a document larger than
``max_length`` characters or nesting open elements deeper than
``max_depth`` raises :class:`~repro.errors.HtmlLimitError` instead of
grinding through it. Real merchant pages sit orders of magnitude below
the defaults; only hostile or corrupted input hits them. Pass ``None``
to disable either bound.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import HtmlLimitError
from .dom import Element, Text
from .entities import decode_entities
from .lexer import HtmlToken, tokenize_html

#: Default maximum document size, in characters (~5 MB of markup).
DEFAULT_MAX_LENGTH = 5_000_000

#: Default maximum open-element nesting depth.
DEFAULT_MAX_DEPTH = 150

#: Tags that implicitly close an open sibling of the same tag.
_SELF_NESTING = frozenset({"tr", "td", "th", "li", "p", "option"})

#: When one of these opens, close any open tag in the mapped set first.
_IMPLIED_CLOSERS = {
    "tr": frozenset({"td", "th"}),
    "tbody": frozenset({"tr", "td", "th"}),
}


def parse_html(
    markup: str,
    *,
    max_length: int | None = DEFAULT_MAX_LENGTH,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
) -> Element:
    """Parse ``markup`` into a DOM tree rooted at a synthetic ``#root``.

    Never raises on *malformed* markup (see the module docstring for
    the recovery rules applied), but *oversized* markup is rejected:

    Args:
        markup: the document.
        max_length: maximum input size in characters; None disables.
        max_depth: maximum open-element nesting depth; None disables.

    Raises:
        HtmlLimitError: when the input exceeds ``max_length`` or the
            open-element stack exceeds ``max_depth``.
    """
    if max_length is not None and len(markup) > max_length:
        raise HtmlLimitError("input_chars", len(markup), max_length)
    return parse_token_stream(tokenize_html(markup), max_depth=max_depth)


def parse_token_stream(
    tokens: Iterable[HtmlToken],
    *,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
) -> Element:
    """Build a DOM tree from an already-lexed token stream.

    The tree-construction half of :func:`parse_html`, split out so
    callers that must lex the document anyway (the ingest gate runs its
    unclosed-element check over the same tokens) can reuse one
    ``tokenize_html`` pass instead of lexing twice. Applies the same
    recovery rules and depth bound; the ``max_length`` guard belongs to
    the caller, who owns the markup string.
    """
    root = Element("#root")
    stack: list[Element] = [root]
    for token in tokens:
        if token.kind == "comment":
            continue
        if token.kind == "text":
            text = decode_entities(token.value)
            if text:
                stack[-1].append(Text(text))
            continue
        if token.kind == "start":
            _close_implied(stack, token.value)
            element = Element(token.value, dict(token.attrs))
            stack[-1].append(element)
            if not token.self_closing:
                if max_depth is not None and len(stack) > max_depth:
                    raise HtmlLimitError(
                        "open_depth", len(stack), max_depth
                    )
                stack.append(element)
            continue
        # End tag: find the nearest matching open tag; drop if absent.
        for depth in range(len(stack) - 1, 0, -1):
            if stack[depth].tag == token.value:
                del stack[depth:]
                break
    return root


def _close_implied(stack: list[Element], incoming: str) -> None:
    """Pop open tags that the ``incoming`` start tag implicitly closes."""
    closers = _IMPLIED_CLOSERS.get(incoming, frozenset())
    while len(stack) > 1 and stack[-1].tag in closers:
        stack.pop()
    if incoming in _SELF_NESTING and len(stack) > 1:
        if stack[-1].tag == incoming:
            stack.pop()
