"""The extraction daemon: robustness pipeline + stdlib HTTP transport.

:class:`ExtractionService` is the transport-independent core — bytes
in, ``(status, payload, headers)`` out — so the whole robustness
pipeline is testable without sockets. Every request runs the same
gauntlet, in order:

1. **fault hook** — ``corrupt_payload`` chaos faults mangle the raw
   body before anything parses it;
2. **admission control** — past ``queue_capacity`` concurrent
   requests, shed with a structured 429 + deterministic Retry-After;
3. **protocol parse** — structured 400 on any malformed body;
4. **deadline** — a :class:`~repro.runtime.jobs.Deadline` bounds the
   whole request; overruns become structured 504s, never hung sockets;
5. **ingest gate** — HTML inputs pass the strict
   :class:`~repro.ingest.IngestGate`; rejects land in the on-disk
   quarantine ledger (``source="serve"``) with a structured 422;
6. **degradation ladder** — the breaker routes to the best live rung
   (active model → previous model → dictionary → fail-fast), falling
   further down *within* the request on model failure;
7. **micro-batching** — model rungs tag through the shared
   :class:`~repro.serve.batcher.MicroBatcher` with per-request fault
   isolation.

The HTTP layer (:class:`ExtractionServer`) is a stdlib
``ThreadingHTTPServer``; one thread per connection, all shared state
behind the service's locks.
"""

from __future__ import annotations

import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..config import ServeConfig
from ..errors import (
    FaultInjectionError,
    ModelError,
    PageQuarantinedError,
    WorkerDeathError,
)
from ..ingest import IngestGate, QuarantineEntry, QuarantineLog
from ..nlp import get_locale, split_sentences
from ..runtime.jobs import Deadline, JobTimeoutError
from ..types import ProductPage, Sentence, Triple
from .admission import AdmissionController
from .batcher import BatchJob, MicroBatcher
from .breaker import (
    DICTIONARY_LEVEL,
    FAIL_FAST_LEVEL,
    MODEL_LEVELS,
    DegradationLadder,
)
from .dictionary import dictionary_extract
from .protocol import (
    LEVEL_NAMES,
    MAX_BODY_BYTES,
    ExtractRequest,
    ProtocolError,
    encode_json,
    error_payload,
    ok_payload,
    parse_extract_request,
)
from .registry import ModelRegistry

#: Model failures that trigger in-request fallback down the ladder.
_FALLBACK_ERRORS = (ModelError, WorkerDeathError, FaultInjectionError)


class ExtractionService:
    """The robustness pipeline around the model registry.

    Args:
        registry: the versioned warm registry (a version should be
            activated before traffic arrives; until then requests
            degrade to fail-fast 503s, still structured).
        config: serve tuning knobs.
        faults: optional :class:`~repro.runtime.faults.FaultPlan`
            driving the chaos hooks (``serve_payload`` pre-parse,
            ``serve_tag`` inside the model call).
        quarantine_path: JSONL ledger for gate rejections; entries are
            stamped ``source="serve"``. None disables persistence
            (rejections still get their structured 422).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServeConfig | None = None,
        faults=None,
        quarantine_path=None,
    ):
        self.config = config or ServeConfig()
        self.registry = registry
        self.faults = faults
        governor = None
        if self.config.memory_budget_mb is not None or (
            faults is not None and faults.has_memory_faults()
        ):
            from ..runtime.memory import MemoryGovernor

            governor = MemoryGovernor(
                self.config.memory_budget_mb,
                faults=faults,
                min_sample_interval=0.2,
            )
        self.governor = governor
        self.admission = AdmissionController(
            self.config.queue_capacity, governor=governor
        )
        self.ladder = DegradationLadder(
            threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
        )
        self.batcher = MicroBatcher(
            max_size=self.config.batch_max_size,
            max_wait_seconds=self.config.batch_max_wait_seconds,
        )
        self.gate = IngestGate(self.config.ingest)
        self.quarantine_log = (
            QuarantineLog(quarantine_path, source="serve")
            if quarantine_path is not None
            else None
        )
        self.started_at = time.monotonic()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._warnings: dict[str, int] = {}
        self._quarantined_by_check: dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------

    def _count(self, key: str, by: int = 1) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + by

    def _merge_warnings(self, warnings: dict[str, int]) -> None:
        if not warnings:
            return
        with self._lock:
            for key, count in warnings.items():
                self._warnings[key] = self._warnings.get(key, 0) + count

    # -- request handling ----------------------------------------------

    def handle_extract(
        self, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        """Run one request through the full robustness pipeline."""
        self._count("requests")
        if self.faults is not None:
            body = self.faults.mangle_payload("serve_payload", body)
        with self.admission.admit() as admitted:
            if not admitted:
                retry_after = self.admission.retry_after()
                self._count("shed")
                status, payload = error_payload(
                    "shed",
                    "server at capacity "
                    f"({self.config.queue_capacity} admitted); retry",
                    retry_after_seconds=retry_after,
                )
                return status, payload, {
                    "Retry-After": str(max(1, math.ceil(retry_after)))
                }
            return self._handle_admitted(body)

    def _handle_admitted(
        self, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        started = time.perf_counter()
        try:
            request = parse_extract_request(body)
        except ProtocolError as error:
            self._count("bad_request")
            status, payload = error_payload(error.code, error.detail)
            return status, payload, {}

        budget = min(
            request.deadline_seconds or self.config.deadline_seconds,
            self.config.max_deadline_seconds,
        )
        deadline = Deadline.after(budget)

        try:
            sentences = self._sentences(request)
        except ProtocolError as error:
            self._count("bad_request")
            status, payload = error_payload(error.code, error.detail)
            return status, payload, {}
        except PageQuarantinedError as error:
            return self._quarantined(request, error)

        if not sentences:
            self._count("served")
            payload = ok_payload(
                request,
                [],
                served_by="none",
                level=0,
                latency_ms=1000 * (time.perf_counter() - started),
            )
            payload["detail"] = "input produced no sentences"
            return 200, payload, {}

        return self._extract(request, sentences, deadline, budget, started)

    def _sentences(self, request: ExtractRequest) -> list[Sentence]:
        """Tokenize the request input (gating HTML through strict ingest)."""
        locale = request.locale or self.config.default_locale
        try:
            nlp = get_locale(locale)
        except Exception as error:
            raise ProtocolError(str(error)) from error
        if request.html is not None:
            page = ProductPage(
                product_id=request.product_id,
                category=request.category or "serve",
                html=request.html,
                locale=locale,
            )
            # Strict policy: the first failing check raises
            # PageQuarantinedError, which _quarantined() converts to
            # the structured 422 + ledger append.
            result = self.gate.process([page])
            self._merge_warnings(result.warnings)
            from ..core.text import tokenize_page

            return list(tokenize_page(result.pages[0]).sentences)
        return list(
            split_sentences(request.product_id, [request.text or ""], nlp)
        )

    def _quarantined(
        self, request: ExtractRequest, error: PageQuarantinedError
    ) -> tuple[int, dict, dict[str, str]]:
        self._count("quarantined")
        with self._lock:
            self._quarantined_by_check[error.check] = (
                self._quarantined_by_check.get(error.check, 0) + 1
            )
        entry = QuarantineEntry(
            page_id=request.product_id,
            check=error.check,
            error=type(error).__name__,
            detail=error.detail,
            source="serve",
        )
        if self.quarantine_log is not None:
            self.quarantine_log.append(entry)
        status, payload = error_payload(
            "quarantined", error.detail, check=error.check
        )
        return status, payload, {}

    def _extract(
        self,
        request: ExtractRequest,
        sentences: list[Sentence],
        deadline: Deadline,
        budget: float,
        started: float,
    ) -> tuple[int, dict, dict[str, str]]:
        """Serve at the best available ladder rung, falling down in-request."""
        route = self.ladder.acquire()
        level = route.level
        fallbacks: list[dict] = []
        while True:
            if level in MODEL_LEVELS:
                outcome = self._try_model_level(
                    request, sentences, deadline, budget, started,
                    route, level, fallbacks,
                )
                if outcome is not None:
                    return outcome
                level += 1
            elif level == DICTIONARY_LEVEL:
                if deadline.expired:
                    return self._timeout(route, level, budget)
                outcome = self._try_dictionary(
                    request, sentences, started, route, fallbacks
                )
                if outcome is not None:
                    return outcome
                level = FAIL_FAST_LEVEL
            else:
                self.ladder.abandon(route)
                self._count("fail_fast")
                status, payload = error_payload(
                    "unavailable",
                    "no model version is live and the dictionary rung "
                    "is unavailable; failing fast",
                    degradation=LEVEL_NAMES[FAIL_FAST_LEVEL],
                    degradation_level=FAIL_FAST_LEVEL,
                )
                return status, payload, {}

    def _try_model_level(
        self,
        request: ExtractRequest,
        sentences: list[Sentence],
        deadline: Deadline,
        budget: float,
        started: float,
        route,
        level: int,
        fallbacks: list[dict],
    ) -> tuple[int, dict, dict[str, str]] | None:
        """One model-rung attempt; None means 'fall to the next rung'."""
        with self.registry.lease(level) as bundle:
            if bundle is None:
                # Rung unoccupied (e.g. no previous version yet):
                # absence is not a fault, skip without a breaker mark.
                return None
            if deadline.expired:
                self.ladder.abandon(route)
                return self._timeout(route, level, budget, record=False)
            job = self.batcher.submit(
                BatchJob(bundle, sentences, deadline, faults=self.faults)
            )
            finished = job.wait(deadline.remaining() + 0.1)
            if not finished or isinstance(job.error, JobTimeoutError):
                # Slow/hung model: structured 504 and a breaker mark.
                # The deadline is spent — no rung below can help.
                return self._timeout(route, level, budget)
            if job.error is not None:
                if isinstance(job.error, _FALLBACK_ERRORS):
                    self.ladder.failure(route, level)
                    self._count("model_errors")
                    fallbacks.append(
                        {
                            "level": LEVEL_NAMES[level],
                            "error": type(job.error).__name__,
                            "detail": str(job.error),
                        }
                    )
                    return None
                self.ladder.abandon(route)
                self._count("internal_errors")
                status, payload = error_payload(
                    "internal",
                    f"{type(job.error).__name__}: {job.error}",
                )
                return status, payload, {}
            triples = self._tagged_triples(job.result or [])
            self.ladder.success(route, level)
            self._count("served")
            payload = ok_payload(
                request,
                triples,
                served_by=bundle.version,
                level=level,
                latency_ms=1000 * (time.perf_counter() - started),
            )
            if fallbacks:
                payload["fallbacks"] = fallbacks
            return 200, payload, {}

    def _try_dictionary(
        self,
        request: ExtractRequest,
        sentences: list[Sentence],
        started: float,
        route,
        fallbacks: list[dict],
    ) -> tuple[int, dict, dict[str, str]] | None:
        """Dictionary rung: any resident bundle's seed values will do."""
        for rung in MODEL_LEVELS:
            with self.registry.lease(rung) as bundle:
                if bundle is None:
                    continue
                triples = [
                    {"attribute": t.attribute, "value": t.value}
                    for t in dictionary_extract(bundle.matcher, sentences)
                ]
                self.ladder.success(route, DICTIONARY_LEVEL)
                self._count("served")
                self._count("served_dictionary")
                payload = ok_payload(
                    request,
                    triples,
                    served_by=f"dictionary:{bundle.version}",
                    level=DICTIONARY_LEVEL,
                    latency_ms=1000 * (time.perf_counter() - started),
                )
                if fallbacks:
                    payload["fallbacks"] = fallbacks
                return 200, payload, {}
        return None

    def _timeout(
        self, route, level: int, budget: float, record: bool = True
    ) -> tuple[int, dict, dict[str, str]]:
        if record:
            self.ladder.failure(route, level)
        self._count("timeouts")
        status, payload = error_payload(
            "timeout",
            f"request deadline of {budget:g}s exceeded "
            f"(level {LEVEL_NAMES[level]})",
        )
        return status, payload, {}

    @staticmethod
    def _tagged_triples(tagged) -> list[dict]:
        from ..core.cleaning.extract import extractions_from_tagged

        triples: list[dict] = []
        seen: set[Triple] = set()
        for extraction in extractions_from_tagged(tagged):
            triple = extraction.triple
            if triple not in seen:
                seen.add(triple)
                triples.append(
                    {"attribute": triple.attribute, "value": triple.value}
                )
        return triples

    # -- control surface -----------------------------------------------

    def swap(self, version: str | None = None) -> tuple[int, dict]:
        """Hot-swap to a version (or the newest published one)."""
        try:
            if version is None:
                bundle = self.registry.activate_latest()
            else:
                bundle = self.registry.activate(version)
        except ModelError as error:
            self._count("swap_failures")
            return error_payload("model_error", str(error))
        self._count("swaps")
        return 200, {
            "status": "ok",
            "active_version": bundle.version,
            "registry": self.registry.health(),
        }

    def health(self) -> dict:
        """The /healthz payload: current ladder level + registry view."""
        level = self.ladder.current_level()
        active = self.registry.active
        return {
            "status": "ok" if level == 0 and active else "degraded",
            "degradation_level": level,
            "degradation": LEVEL_NAMES[level],
            "active_version": active.version if active else None,
            "uptime_seconds": round(
                time.monotonic() - self.started_at, 3
            ),
        }

    def stats(self) -> dict:
        """The /stats payload: every counter the pipeline keeps."""
        with self._lock:
            counters = dict(self._counters)
            warnings = dict(self._warnings)
            quarantined = dict(self._quarantined_by_check)
        payload = self.health()
        payload.update(
            {
                "counters": counters,
                "warnings": warnings,
                "quarantined_by_check": quarantined,
                "quarantine_appended": (
                    self.quarantine_log.appended
                    if self.quarantine_log is not None
                    else 0
                ),
                "admission": self.admission.stats(),
                "batcher": self.batcher.stats(),
                "ladder": self.ladder.stats(),
                "registry": self.registry.health(),
            }
        )
        return payload

    def close(self) -> None:
        self.batcher.close()
        if self.quarantine_log is not None:
            self.quarantine_log.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP to the service; every response is structured JSON."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the service keeps its own counters; stderr stays quiet

    @property
    def service(self) -> ExtractionService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = encode_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        """Read the request body; None (and a structured 400) if oversized."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            status, payload = error_payload(
                "bad_request",
                f"request body is {length} bytes (max {MAX_BODY_BYTES})",
            )
            self._send(status, payload, {"Connection": "close"})
            self.close_connection = True
            return None
        return self.rfile.read(length) if length > 0 else b""

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/extract":
            body = self._read_body()
            if body is None:
                return
            try:
                status, payload, headers = self.service.handle_extract(body)
            except Exception as error:  # last ditch: never a hung socket
                status, payload = error_payload(
                    "internal", f"{type(error).__name__}: {error}"
                )
                headers = {}
            self._send(status, payload, headers)
        elif self.path == "/admin/swap":
            body = self._read_body()
            if body is None:
                return
            version = None
            if body:
                import json as _json

                try:
                    parsed = _json.loads(body.decode("utf-8"))
                    version = (
                        parsed.get("version")
                        if isinstance(parsed, dict)
                        else None
                    )
                except (UnicodeDecodeError, ValueError):
                    status, payload = error_payload(
                        "bad_request", "swap body must be JSON"
                    )
                    self._send(status, payload)
                    return
            status, payload = self.service.swap(version)
            self._send(status, payload)
        else:
            status, payload = error_payload(
                "not_found", f"no such endpoint: POST {self.path}"
            )
            self._send(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send(200, self.service.health())
        elif self.path == "/stats":
            self._send(200, self.service.stats())
        else:
            status, payload = error_payload(
                "not_found", f"no such endpoint: GET {self.path}"
            )
            self._send(status, payload)


class ExtractionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ExtractionService):
        super().__init__(address, _Handler)
        self.service = service


def start_server(
    service: ExtractionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[ExtractionServer, threading.Thread]:
    """Start the daemon on a background thread (port 0 = ephemeral).

    Returns the server (its bound port in ``server_address[1]``) and
    the serving thread. Call ``server.shutdown()`` then
    ``service.close()`` to stop.
    """
    server = ExtractionServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        name="serve-http",
        daemon=True,
    )
    thread.start()
    return server, thread
