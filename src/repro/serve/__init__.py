"""The online extraction service (``repro-pae serve``).

A long-lived daemon that serves ``<product, attribute, value>``
extraction over HTTP from a **versioned warm model registry**, routing
every request through a robustness pipeline: admission control with
load shedding, per-request deadlines, strict ingest gating with a
persistent quarantine ledger, micro-batched inference, and a
per-model circuit breaker driving a four-rung graceful-degradation
ladder (active model → previous model → dictionary-only → fail-fast).

Public surface:

* :class:`ExtractionService` / :class:`ExtractionServer` /
  :func:`start_server` — the daemon (transport-independent core +
  stdlib HTTP wrapper).
* :class:`ModelRegistry` / :class:`ModelBundle` /
  :func:`publish_bundle` — the versioned registry.
* :class:`AdmissionController`, :class:`DegradationLadder`,
  :class:`CircuitBreaker`, :class:`MicroBatcher` — the pipeline parts.
* :func:`train_and_publish` — bootstrap a registry from a synthetic
  category.
"""

from .admission import AdmissionController
from .batcher import BatchJob, MicroBatcher
from .bootstrap import train_and_publish
from .breaker import CircuitBreaker, DegradationLadder
from .dictionary import dictionary_extract
from .protocol import (
    ERROR_STATUS,
    LEVEL_NAMES,
    ExtractRequest,
    ProtocolError,
    parse_extract_request,
)
from .registry import ModelBundle, ModelRegistry, load_bundle, publish_bundle
from .server import ExtractionServer, ExtractionService, start_server

__all__ = [
    "AdmissionController",
    "BatchJob",
    "CircuitBreaker",
    "DegradationLadder",
    "ERROR_STATUS",
    "ExtractRequest",
    "ExtractionServer",
    "ExtractionService",
    "LEVEL_NAMES",
    "MicroBatcher",
    "ModelBundle",
    "ModelRegistry",
    "ProtocolError",
    "dictionary_extract",
    "load_bundle",
    "parse_extract_request",
    "publish_bundle",
    "start_server",
    "train_and_publish",
]
