"""Micro-batching for the serve hot path, with per-request isolation.

Concurrent requests that resolved to the *same model bundle* are
gathered (up to ``max_size`` jobs or ``max_wait_seconds``, whichever
comes first) into one ``tagger.tag()`` call — the tagger internally
length-buckets via :mod:`repro.perf.bucketing`, so a combined batch
amortises feature extraction and padding across requests.

The failure contract is strict per-request isolation: when a combined
batch raises (a strict-decode :class:`~repro.errors.ModelError` on one
dropped sentence, an injected :class:`~repro.errors.WorkerDeathError`),
the batcher **retries every job individually** so exactly the faulty
request fails with a structured error and its batch-mates still get
their results. One bad sentence never takes down its micro-batch.

Jobs whose deadline expired while queued are dropped with a structured
timeout before any model work is spent on them.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..errors import (
    FaultInjectionError,
    JobTimeoutError,
    ModelError,
    WorkerDeathError,
)
from ..runtime.jobs import Deadline
from ..types import Sentence, TaggedSentence

#: Exceptions where retrying jobs individually can rescue batch-mates.
ISOLATABLE = (ModelError, WorkerDeathError, FaultInjectionError)


class BatchJob:
    """One request's unit of model work, owned by the batcher."""

    __slots__ = (
        "bundle",
        "sentences",
        "deadline",
        "faults",
        "stage",
        "result",
        "error",
        "_done",
    )

    def __init__(
        self,
        bundle,
        sentences: Sequence[Sentence],
        deadline: Deadline,
        faults=None,
        stage: str = "serve_tag",
    ):
        self.bundle = bundle
        self.sentences = list(sentences)
        self.deadline = deadline
        self.faults = faults
        self.stage = stage
        self.result: list[TaggedSentence] | None = None
        self.error: Exception | None = None
        self._done = threading.Event()

    def finish(
        self,
        result: list[TaggedSentence] | None = None,
        error: Exception | None = None,
    ) -> None:
        self.result = result
        self.error = error
        self._done.set()

    def wait(self, timeout: float) -> bool:
        """Block until resolved; False when the wait itself timed out."""
        return self._done.wait(timeout)


class MicroBatcher:
    """A single worker thread draining a queue of :class:`BatchJob`.

    Args:
        max_size: most jobs merged into one ``tag()`` call.
        max_wait_seconds: how long the worker lingers after the first
            job arrives, gathering batch-mates, before tagging. Kept
            tiny (milliseconds) — it trades a sliver of p50 for large
            p99/throughput wins under concurrency.
    """

    def __init__(self, max_size: int = 16, max_wait_seconds: float = 0.005):
        self.max_size = max(1, max_size)
        self.max_wait_seconds = max(0.0, max_wait_seconds)
        self._cond = threading.Condition()
        self._queue: list[BatchJob] = []
        self._running = True
        #: Counters surfaced through /stats.
        self.batches = 0
        self.batched_jobs = 0
        self.isolated_retries = 0
        self.deadline_drops = 0
        self._worker = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._worker.start()

    # -- producer side -------------------------------------------------

    def submit(self, job: BatchJob) -> BatchJob:
        with self._cond:
            if not self._running:
                job.finish(error=RuntimeError("batcher is shut down"))
                return job
            self._queue.append(job)
            self._cond.notify_all()
        return job

    def close(self) -> None:
        with self._cond:
            self._running = False
            pending = self._queue[:]
            self._queue.clear()
            self._cond.notify_all()
        for job in pending:
            job.finish(error=RuntimeError("batcher is shut down"))
        self._worker.join(timeout=5.0)

    # -- worker side ---------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            if batch:
                self._execute(batch)

    def _gather(self) -> list[BatchJob] | None:
        """Block for a first job, linger briefly for same-bundle mates."""
        with self._cond:
            while self._running and not self._queue:
                self._cond.wait()
            if not self._running:
                return None
            lead = self._queue[0]
            if self.max_wait_seconds > 0 and len(self._queue) < self.max_size:
                # Linger once for batch-mates; bounded, not re-armed.
                self._cond.wait(self.max_wait_seconds)
                if not self._running:
                    return None
            batch: list[BatchJob] = []
            rest: list[BatchJob] = []
            for job in self._queue:
                if (
                    job.bundle is lead.bundle
                    and len(batch) < self.max_size
                ):
                    batch.append(job)
                else:
                    rest.append(job)
            self._queue = rest
            if rest:
                self._cond.notify_all()
            return batch

    def _execute(self, batch: list[BatchJob]) -> None:
        live: list[BatchJob] = []
        for job in batch:
            if job.deadline.expired:
                self.deadline_drops += 1
                job.finish(error=job.deadline.error("serve-extract"))
            else:
                live.append(job)
        if not live:
            return
        self.batches += 1
        self.batched_jobs += len(live)
        try:
            results = self._tag_combined(live)
        except ISOLATABLE:
            # Combined batch poisoned — isolate: each job retried
            # alone, so only the faulty request(s) fail.
            self.isolated_retries += 1
            self._tag_isolated(live)
            return
        except Exception as error:  # defensive: never hang a waiter
            for job in live:
                job.finish(error=error)
            return
        for job, tagged in zip(live, results):
            job.finish(result=tagged)

    @staticmethod
    def _fire_faults(jobs: list[BatchJob]) -> None:
        for job in jobs:
            if job.faults is not None:
                job.faults.fire(job.stage)

    def _tag_combined(
        self, jobs: list[BatchJob]
    ) -> list[list[TaggedSentence]]:
        self._fire_faults(jobs)
        bundle = jobs[0].bundle
        sentences = [s for job in jobs for s in job.sentences]
        tagged = list(bundle.tagger.tag(sentences))
        results: list[list[TaggedSentence]] = []
        cursor = 0
        for job in jobs:
            results.append(tagged[cursor : cursor + len(job.sentences)])
            cursor += len(job.sentences)
        return results

    def _tag_isolated(self, jobs: list[BatchJob]) -> None:
        for job in jobs:
            try:
                if job.faults is not None:
                    job.faults.fire(job.stage)
                tagged = list(job.bundle.tagger.tag(job.sentences))
            except Exception as error:
                job.finish(error=error)
            else:
                job.finish(result=tagged)

    def stats(self) -> dict:
        with self._cond:
            queued = len(self._queue)
        return {
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "isolated_retries": self.isolated_retries,
            "deadline_drops": self.deadline_drops,
            "queued": queued,
        }
