"""Training and publishing bundles for the serve registry.

``repro-pae serve --bootstrap CATEGORY`` uses this to stand up a
registry from nothing: generate a synthetic category corpus, run the
paper's preprocessing (seed assembly + distant-supervision labelling),
train a CRF tagger on the labelled sentences, and publish the result —
model weights, the seed dictionary (the ladder's rung-2 fallback) and
a checksum manifest — as one registry version.
"""

from __future__ import annotations

import pathlib

from ..config import CrfConfig
from ..core.preprocess.candidate_discovery import discover_candidates
from ..core.preprocess.seed import build_seed
from ..core.preprocess.training_set import build_training_material
from ..core.text import tokenize_pages
from ..errors import ModelError
from ..ml.crf import CrfTagger
from .registry import publish_bundle


def train_and_publish(
    root: str | pathlib.Path,
    category: str,
    products: int = 120,
    *,
    version: str = "v1",
    data_seed: int = 7,
    max_iterations: int = 60,
) -> pathlib.Path:
    """Train a tagger on one synthetic category and publish it.

    Returns the published bundle directory. Raises
    :class:`~repro.errors.ModelError` when the category yields no
    labelled training sentences (no seed → nothing to serve).
    """
    from ..corpus import Marketplace

    dataset = Marketplace(seed=data_seed).generate(category, products)
    pages = list(dataset.product_pages)
    candidates = discover_candidates(pages)
    seed = build_seed(pages, dataset.query_log, candidates=candidates)
    page_texts = tokenize_pages(pages)
    material = build_training_material(page_texts, seed, candidates)
    if not material.labeled:
        raise ModelError(
            f"category {category!r} produced no labelled sentences; "
            "cannot bootstrap a serve bundle from it"
        )
    tagger = CrfTagger(CrfConfig(max_iterations=max_iterations))
    tagger.train(list(material.labeled))
    dictionary = {
        attribute: sorted(counter)
        for attribute, counter in seed.values.items()
    }
    return publish_bundle(
        root, version, tagger, dictionary, dataset.locale
    )
