"""Admission control: bounded concurrency with deterministic shedding.

The daemon never queues unbounded work. A fixed number of requests may
be *admitted* (in the handler, waiting on the batcher, or running
inference); anything beyond that is **shed immediately** with a
structured 429 carrying a ``Retry-After`` hint. The hint comes from
:func:`repro.runtime.jobs.retry_backoff`, whose jitter is pure and
deterministic — identical shed streaks produce identical hints, which
keeps the chaos suite and the bench reproducible.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from ..runtime.jobs import retry_backoff


class AdmissionController:
    """A bounded admission counter with load-shedding backoff hints.

    Args:
        capacity: maximum concurrently admitted requests. Arrivals
            past capacity are shed instantly — no queueing, no
            blocking — so an overloaded daemon degrades to fast,
            honest 429s instead of a growing backlog of doomed work.
        governor: optional
            :class:`~repro.runtime.memory.MemoryGovernor`; while it
            reports pressure the effective capacity is halved (floor
            1), shedding the overflow with the same structured 429
            (counted separately in :attr:`total_shed_memory`).
    """

    def __init__(self, capacity: int, *, governor=None):
        if capacity < 1:
            raise ValueError(f"admission capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.governor = governor
        self._lock = threading.Lock()
        self._admitted = 0
        #: Consecutive sheds since the last successful admission;
        #: drives the escalating Retry-After hint.
        self._shed_streak = 0
        self.total_admitted = 0
        self.total_shed = 0
        self.total_shed_memory = 0

    def _effective_capacity(self) -> int:
        # Sampled outside the admission lock: the governor throttles
        # its own sampling rate and a slightly stale reading only
        # shifts *which* request gets shed, never correctness.
        if self.governor is not None and self.governor.under_pressure():
            return max(1, self.capacity // 2)
        return self.capacity

    def try_admit(self) -> bool:
        """Admit one request, or refuse without blocking."""
        capacity = self._effective_capacity()
        with self._lock:
            if self._admitted >= capacity:
                self._shed_streak += 1
                self.total_shed += 1
                if capacity < self.capacity:
                    self.total_shed_memory += 1
                return False
            self._admitted += 1
            self._shed_streak = 0
            self.total_admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._admitted = max(0, self._admitted - 1)

    @contextmanager
    def admit(self) -> Iterator[bool]:
        """``with controller.admit() as ok:`` — releases iff admitted."""
        admitted = self.try_admit()
        try:
            yield admitted
        finally:
            if admitted:
                self.release()

    def retry_after(self) -> float:
        """Deterministic Retry-After for the current shed streak.

        Escalates with consecutive sheds (a persistently saturated
        server pushes clients further out) and resets once a request
        gets through. Pure function of the streak, so concurrent
        shed responses at the same streak carry the same hint.
        """
        with self._lock:
            streak = self._shed_streak
        attempt = min(max(streak, 1), 6)
        return retry_backoff("serve-shed", attempt)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._admitted

    def stats(self) -> dict:
        with self._lock:
            payload = {
                "capacity": self.capacity,
                "in_flight": self._admitted,
                "admitted": self.total_admitted,
                "shed": self.total_shed,
                "shed_memory": self.total_shed_memory,
                "shed_streak": self._shed_streak,
            }
        if self.governor is not None:
            payload["memory"] = self.governor.counters()
        return payload
