"""The versioned warm model registry behind the serve daemon.

A *bundle* is one published model version on disk::

    <registry root>/<version>/
        meta.json          model structure (ml/persistence format)
        weights.npz        model arrays
        dictionary.json    {"locale": ..., "values": {attr: [value, ...]}}
        MANIFEST.json      per-file SHA-256 checksums + combined digest

Loading is paranoid by design: the manifest is re-hashed before any
file is parsed (a corrupted or half-written bundle raises
:class:`~repro.errors.ModelError` and is never admitted), and a loaded
model must survive a **warm-up inference** before the registry marks
it live — cold-start latency and load-time crashes land here, at
activation, not on the first unlucky production request.

Activation is an **atomic hot-swap with draining**: requests lease the
active bundle (a refcount), the swap publishes the new bundle in one
lock-protected assignment, and the old version then *drains* — the
swap waits until its in-flight leases release. A request started
before the swap completes on the version it started on; no request
ever observes a half-swapped model. The previous version stays
resident as the first rung of the degradation ladder.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Iterator, Mapping, Sequence

from contextlib import contextmanager

from ..errors import ModelError
from ..ml.persistence import (
    load_tagger,
    save_crf,
    save_lstm,
    verify_manifest,
    write_manifest,
)
from ..nlp import get_locale
from ..types import Sentence

DICTIONARY_NAME = "dictionary.json"


class ModelBundle:
    """One loaded model version with lease-counted in-flight tracking."""

    def __init__(
        self,
        version: str,
        tagger,
        dictionary: dict[str, tuple[str, ...]],
        locale: str,
        digest: str,
    ):
        self.version = version
        self.tagger = tagger
        self.dictionary = dictionary
        self.locale = locale
        self.digest = digest
        self.warmed = False
        self._leases = 0
        self._cond = threading.Condition()
        self._matcher = None
        self._matcher_lock = threading.Lock()

    # -- leases --------------------------------------------------------

    def acquire(self) -> None:
        with self._cond:
            self._leases += 1

    def release(self) -> None:
        with self._cond:
            self._leases -= 1
            if self._leases <= 0:
                self._cond.notify_all()

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._leases

    def drain(self, timeout: float) -> bool:
        """Wait for in-flight leases to finish; True when drained."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._leases > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # -- extraction helpers -------------------------------------------

    @property
    def matcher(self):
        """Lazily built dictionary matcher (the level-2 fallback)."""
        with self._matcher_lock:
            if self._matcher is None:
                from ..core.preprocess.matcher import ValueMatcher

                self._matcher = ValueMatcher(
                    {
                        attribute: list(values)
                        for attribute, values in self.dictionary.items()
                    }
                )
            return self._matcher

    def warm_up(self) -> float:
        """Run one inference so the first real request pays no cold start.

        Returns the warm-up latency in seconds. Raises
        :class:`ModelError` when inference fails — a bundle that
        cannot tag its own warm-up sentence must never be marked live.
        """
        nlp = get_locale(self.locale)
        sample_values = [
            value
            for values in self.dictionary.values()
            for value in list(values)[:1]
        ]
        text = " ".join(sample_values[:3]) or "warm up"
        tokens = nlp.tokens(text)
        if not tokens:
            tokens = nlp.tokens("warm up")
        sentence = Sentence("__warmup__", 0, tokens)
        started = time.perf_counter()
        try:
            tagged = self.tagger.tag([sentence])
        except Exception as error:
            raise ModelError(
                f"warm-up inference failed for version "
                f"{self.version!r}: {error}"
            ) from error
        if len(tagged) != 1 or len(tagged[0].labels) != len(sentence):
            raise ModelError(
                f"warm-up inference for version {self.version!r} "
                "returned malformed output"
            )
        self.warmed = True
        return time.perf_counter() - started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelBundle({self.version!r}, in_flight={self.in_flight}, "
            f"warmed={self.warmed})"
        )


def publish_bundle(
    root: str | pathlib.Path,
    version: str,
    tagger,
    dictionary: Mapping[str, Sequence[str]],
    locale: str,
) -> pathlib.Path:
    """Write one model version into a registry directory.

    Persists the tagger (CRF or LSTM) via :mod:`repro.ml.persistence`,
    the fallback dictionary, and a checksum manifest covering all of
    it. Returns the bundle directory.
    """
    directory = pathlib.Path(root) / version
    kind = type(tagger).__name__
    if kind == "CrfTagger":
        save_crf(tagger, directory)
    elif kind == "LstmTagger":
        save_lstm(tagger, directory)
    else:
        raise ModelError(
            f"cannot publish tagger of type {kind} (CRF/LSTM only)"
        )
    (directory / DICTIONARY_NAME).write_text(
        json.dumps(
            {
                "locale": locale,
                "values": {
                    attribute: sorted(set(values))
                    for attribute, values in dictionary.items()
                },
            },
            ensure_ascii=False,
            indent=1,
            sort_keys=True,
        )
    )
    write_manifest(directory, extra_files=(DICTIONARY_NAME,))
    return directory


def load_bundle(
    root: str | pathlib.Path, version: str
) -> ModelBundle:
    """Load and checksum-verify one published version (not yet warm)."""
    directory = pathlib.Path(root) / version
    if not directory.is_dir():
        raise ModelError(f"no published version {version!r} at {root}")
    digest = verify_manifest(directory)
    tagger = load_tagger(directory)
    try:
        payload = json.loads((directory / DICTIONARY_NAME).read_text())
        locale = str(payload["locale"])
        values = {
            str(attribute): tuple(str(v) for v in value_list)
            for attribute, value_list in dict(payload["values"]).items()
        }
    except (ValueError, KeyError, TypeError) as error:
        raise ModelError(
            f"garbled {DICTIONARY_NAME} in version {version!r}: {error}"
        ) from error
    return ModelBundle(version, tagger, values, locale, digest)


class ModelRegistry:
    """Versioned in-memory registry with warm activation and hot-swap.

    Args:
        root: directory of published bundles (one subdirectory per
            version; see :func:`publish_bundle`).
        drain_timeout_seconds: how long :meth:`activate` waits for the
            outgoing version's in-flight requests before giving up on
            a clean drain (the swap itself has already happened).
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        drain_timeout_seconds: float = 10.0,
    ):
        self.root = pathlib.Path(root)
        self.drain_timeout_seconds = drain_timeout_seconds
        self._lock = threading.Lock()
        self._active: ModelBundle | None = None
        self._previous: ModelBundle | None = None
        #: Swap bookkeeping surfaced through the health endpoint.
        self.swaps = 0
        self.clean_drains = 0
        self.drain_timeouts = 0
        self.last_warmup_seconds: float | None = None

    # -- introspection -------------------------------------------------

    def versions(self) -> list[str]:
        """Published version names, sorted (the activation order)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "MANIFEST.json").exists()
        )

    @property
    def active(self) -> ModelBundle | None:
        with self._lock:
            return self._active

    @property
    def previous(self) -> ModelBundle | None:
        with self._lock:
            return self._previous

    # -- activation ----------------------------------------------------

    def activate(self, version: str) -> ModelBundle:
        """Load, verify, warm up and hot-swap one version live.

        The load + warm-up happen entirely off the serving path; only
        the final publish is a lock-protected pointer swap. The
        outgoing version is then drained (bounded wait) and kept as
        the degradation ladder's ``previous`` rung.
        """
        bundle = load_bundle(self.root, version)
        self.last_warmup_seconds = bundle.warm_up()
        with self._lock:
            if (
                self._active is not None
                and self._active.version == version
            ):
                # Re-activating the live version is a refresh, not a
                # swap; the previous rung keeps its occupant.
                outgoing, self._active = self._active, bundle
            else:
                outgoing = self._active
                self._previous, self._active = outgoing, bundle
            self.swaps += 1
        if outgoing is not None:
            if outgoing.drain(self.drain_timeout_seconds):
                self.clean_drains += 1
            else:
                self.drain_timeouts += 1
        return bundle

    def activate_latest(self) -> ModelBundle:
        """Activate the lexicographically newest published version."""
        versions = self.versions()
        if not versions:
            raise ModelError(f"registry {self.root} has no versions")
        return self.activate(versions[-1])

    # -- leasing -------------------------------------------------------

    @contextmanager
    def lease(self, level: int = 0) -> Iterator[ModelBundle | None]:
        """Borrow the bundle serving a ladder level (0=active, 1=previous).

        Yields None when the rung is unoccupied. The lease pins the
        bundle's refcount for its whole scope, so a concurrent
        hot-swap drains *after* this request finishes — the request
        observes one consistent (tagger, dictionary, version) triple
        throughout.
        """
        with self._lock:
            bundle = self._active if level == 0 else self._previous
            if bundle is not None:
                bundle.acquire()
        try:
            yield bundle
        finally:
            if bundle is not None:
                bundle.release()

    def health(self) -> dict:
        """Registry view for the health endpoint."""
        active = self.active
        previous = self.previous
        return {
            "active_version": active.version if active else None,
            "active_digest": active.digest[:12] if active else None,
            "previous_version": previous.version if previous else None,
            "in_flight": {
                "active": active.in_flight if active else 0,
                "previous": previous.in_flight if previous else 0,
            },
            "swaps": self.swaps,
            "clean_drains": self.clean_drains,
            "drain_timeouts": self.drain_timeouts,
            "last_warmup_seconds": self.last_warmup_seconds,
        }
