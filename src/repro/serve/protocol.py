"""The serve wire protocol: request parsing and structured responses.

Every response the daemon emits — success or failure — is a JSON
object with a ``status`` field (``"ok"`` / ``"error"``); errors carry
a machine-readable ``code`` from :data:`ERROR_STATUS` plus a human
``detail``. The invariant the chaos suite asserts is exactly this:
*every* request, however hostile or unlucky, receives one structured
response — shed, quarantined, timed out, degraded, or served — and
never a hung socket or an opaque stack trace.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from ..errors import ReproError

#: Error code → HTTP status. The serve handlers only ever emit these.
ERROR_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "quarantined": 422,
    "shed": 429,
    "model_error": 500,
    "internal": 500,
    "unavailable": 503,
    "timeout": 504,
}

#: Degradation-ladder levels, best to worst.
LEVEL_NAMES = ("full", "previous", "dictionary", "fail_fast")

#: Upper bound on accepted request bodies (pre-gate containment).
MAX_BODY_BYTES = 8_000_000


class ProtocolError(ReproError):
    """A request violated the wire protocol (structured 400).

    Attributes:
        code: error code (always a key of :data:`ERROR_STATUS`).
        detail: human-readable description.
    """

    def __init__(self, detail: str, code: str = "bad_request"):
        self.code = code
        self.detail = detail
        super().__init__(detail)


@dataclass(frozen=True, slots=True)
class ExtractRequest:
    """One extraction request.

    Exactly one of ``text`` / ``html`` is set. ``deadline_seconds``
    optionally tightens (never loosens past the server cap) the
    per-request wall-clock budget.
    """

    product_id: str
    text: str | None = None
    html: str | None = None
    locale: str | None = None
    category: str | None = None
    deadline_seconds: float | None = None


def parse_extract_request(body: bytes) -> ExtractRequest:
    """Decode and validate a request body.

    Raises:
        ProtocolError: on oversized, non-UTF-8, non-JSON, or
            schema-violating bodies — the structured-400 path that
            contains ``corrupt_payload`` chaos faults.
    """
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body is {len(body)} bytes "
            f"(max {MAX_BODY_BYTES})"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(
            f"request body is not valid UTF-8 JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    text = payload.get("text")
    html = payload.get("html")
    if (text is None) == (html is None):
        raise ProtocolError(
            "request needs exactly one of 'text' or 'html'"
        )
    content = text if text is not None else html
    if not isinstance(content, str):
        raise ProtocolError("'text'/'html' must be a string")
    product_id = payload.get("product_id", "request")
    if not isinstance(product_id, str) or not product_id:
        raise ProtocolError("'product_id' must be a non-empty string")
    for field_name in ("locale", "category"):
        value = payload.get(field_name)
        if value is not None and not isinstance(value, str):
            raise ProtocolError(f"'{field_name}' must be a string")
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if (
            not isinstance(deadline, (int, float))
            or isinstance(deadline, bool)
            or not math.isfinite(deadline)
            or deadline <= 0
        ):
            raise ProtocolError(
                "'deadline_seconds' must be a positive finite number"
            )
        deadline = float(deadline)
    return ExtractRequest(
        product_id=product_id,
        text=text,
        html=html,
        locale=payload.get("locale"),
        category=payload.get("category"),
        deadline_seconds=deadline,
    )


def ok_payload(
    request: ExtractRequest,
    triples: list[dict],
    *,
    served_by: str,
    level: int,
    latency_ms: float,
) -> dict:
    """The success response body."""
    return {
        "status": "ok",
        "product_id": request.product_id,
        "triples": triples,
        "served_by": served_by,
        "degradation_level": level,
        "degradation": LEVEL_NAMES[level],
        "latency_ms": round(latency_ms, 3),
    }


def error_payload(
    code: str,
    detail: str,
    *,
    retry_after_seconds: float | None = None,
    **extra,
) -> tuple[int, dict]:
    """``(http_status, body)`` for a structured error response."""
    if code not in ERROR_STATUS:
        raise ValueError(f"unknown serve error code {code!r}")
    body = {"status": "error", "code": code, "detail": detail}
    if retry_after_seconds is not None:
        body["retry_after_seconds"] = round(retry_after_seconds, 3)
    body.update(extra)
    return ERROR_STATUS[code], body


def encode_json(payload: dict) -> bytes:
    return json.dumps(payload, ensure_ascii=False).encode("utf-8")
