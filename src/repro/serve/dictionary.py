"""The dictionary-only fallback extractor (ladder rung 2).

When both model rungs are tripped or unavailable, requests are still
answered from the seed dictionary shipped inside every bundle:
:class:`~repro.core.preprocess.matcher.ValueMatcher` scans each
sentence greedily (longest value first) and every resolved span
becomes a triple. No model inference runs at all — this rung cannot
fail the way a model can, so it is the ladder's working floor. Recall
is whatever the dictionary covers; the point is an honest, useful
answer instead of an error while the breakers cool down.
"""

from __future__ import annotations

from typing import Sequence

from ..types import Sentence, Triple


def dictionary_extract(
    matcher, sentences: Sequence[Sentence]
) -> list[Triple]:
    """Extract triples by pure dictionary matching (no model).

    Args:
        matcher: a :class:`ValueMatcher` built from a bundle's
            dictionary (see ``ModelBundle.matcher``).
        sentences: the request's tokenized sentences.

    Returns:
        Deduplicated triples in first-occurrence order.
    """
    triples: list[Triple] = []
    seen: set[Triple] = set()
    for sentence in sentences:
        texts = sentence.texts()
        for start, end, attribute in matcher.find_spans(texts):
            triple = Triple(
                sentence.product_id,
                attribute,
                " ".join(texts[start:end]),
            )
            if triple not in seen:
                seen.add(triple)
                triples.append(triple)
    return triples
