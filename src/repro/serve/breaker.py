"""Per-model circuit breaker driving the graceful-degradation ladder.

The ladder has four rungs (:data:`~repro.serve.protocol.LEVEL_NAMES`):

====  ============  ====================================================
rung  name          what serves the request
====  ============  ====================================================
0     full          the active registry version
1     previous      the version that was live before the last hot-swap
2     dictionary    seed-dictionary matching only (no model inference)
3     fail_fast     structured 503 immediately, no work attempted
====  ============  ====================================================

Each model rung (0 and 1) has its own :class:`CircuitBreaker`:
``threshold`` consecutive failures (ModelError / timeout / worker
death) trip it open and route traffic one rung down. After a cooldown
the breaker goes *half-open* and admits exactly one probe request; a
probe success closes the breaker and recovers the rung, a probe
failure re-opens it for another cooldown. Rung 2 never trips — the
dictionary matcher has no model to fail — so the ladder always has a
working floor above ``fail_fast``.

The clock is injectable so tests step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .protocol import LEVEL_NAMES

#: Ladder rungs guarded by breakers (model-backed rungs only).
MODEL_LEVELS = (0, 1)
DICTIONARY_LEVEL = 2
FAIL_FAST_LEVEL = 3

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open single-probe recovery.

    Not thread-safe on its own — :class:`DegradationLadder` serializes
    all access under one lock.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_seconds: float,
        clock: Callable[[], float],
    ):
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.trips = 0

    def admit(self) -> tuple[bool, bool]:
        """``(admitted, is_probe)`` for one arriving request.

        Closed rungs admit freely. Open rungs refuse until the
        cooldown elapses, then turn half-open; a half-open rung admits
        exactly one concurrent probe — the claim happens here, so
        racing callers cannot both become the probe.
        """
        if self.state == CLOSED:
            return True, False
        if self.state == OPEN:
            if self._clock() - self.opened_at >= self.cooldown_seconds:
                self.state = HALF_OPEN
                self.probe_in_flight = False
            else:
                return False, False
        if self.state == HALF_OPEN and not self.probe_in_flight:
            self.probe_in_flight = True
            return True, True
        return False, False

    def would_admit(self) -> bool:
        """Read-only view of :meth:`admit` (no state transitions)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return self._clock() - self.opened_at >= self.cooldown_seconds
        return not self.probe_in_flight

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.probe_in_flight = False

    def record_failure(self) -> bool:
        """Count one failure; returns True when the breaker (re)opens."""
        if self.state == HALF_OPEN:
            # Failed probe: straight back to open for a fresh cooldown.
            self.state = OPEN
            self.opened_at = self._clock()
            self.probe_in_flight = False
            self.failures = self.threshold
            return True
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self.state = OPEN
            self.opened_at = self._clock()
            self.trips += 1
            return True
        return False

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "trips": self.trips,
        }


class Route:
    """The rung a request was routed to (plus probe bookkeeping)."""

    __slots__ = ("level", "probe")

    def __init__(self, level: int, probe: bool = False):
        self.level = level
        self.probe = probe


class DegradationLadder:
    """Thread-safe router from requests to the best available rung.

    Usage per request::

        route = ladder.acquire()            # rung to try first
        ...serve at route.level, or fall further down in-request...
        ladder.success(route, achieved)     # where it finally landed
        # each model-rung failure along the way:
        ladder.failure(route, failed_level)

    ``acquire`` returns the highest rung whose breaker admits traffic;
    half-open rungs admit exactly one concurrent probe. In-request
    fallback (a level-0 attempt failing over to level 1 inside one
    request) reports each model-rung failure via :meth:`failure` so
    breakers trip on real evidence, then reports the landing level via
    :meth:`success`. A rung that is merely *unavailable* (no previous
    version published yet) is skipped by the caller without a failure
    report — absence is not a fault.

    Args:
        threshold: consecutive failures that trip one rung's breaker.
        cooldown_seconds: open time before a half-open probe.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._lock = threading.Lock()
        self._breakers = {
            level: CircuitBreaker(threshold, cooldown_seconds, clock)
            for level in MODEL_LEVELS
        }
        self.recoveries = 0
        #: Requests that finished at each ladder level.
        self.served_at_level = {name: 0 for name in LEVEL_NAMES}

    def acquire(self) -> Route:
        """Pick the best rung currently admitting traffic."""
        with self._lock:
            for level in MODEL_LEVELS:
                admitted, is_probe = self._breakers[level].admit()
                if admitted:
                    return Route(level, is_probe)
            return Route(DICTIONARY_LEVEL)

    def failure(self, route: Route, level: int) -> None:
        """Record a model failure (ModelError / timeout / worker death).

        ``level`` is the model rung that actually failed — during
        in-request fallback one request may report failures at several
        rungs before landing.
        """
        if level not in MODEL_LEVELS:
            return
        with self._lock:
            self._breakers[level].record_failure()

    def success(self, route: Route, achieved_level: int) -> None:
        """Record where the request finally landed."""
        with self._lock:
            if achieved_level in MODEL_LEVELS:
                breaker = self._breakers[achieved_level]
                was_recovering = breaker.state != CLOSED
                breaker.record_success()
                if was_recovering:
                    self.recoveries += 1
            elif route.probe and route.level in MODEL_LEVELS:
                # The probe never produced a model verdict (e.g. it
                # fell through on an unavailable rung); release the
                # slot so the next arrival can probe.
                breaker = self._breakers[route.level]
                if breaker.state == HALF_OPEN:
                    breaker.probe_in_flight = False
            if 0 <= achieved_level < len(LEVEL_NAMES):
                self.served_at_level[LEVEL_NAMES[achieved_level]] += 1

    def abandon(self, route: Route) -> None:
        """Release a probe slot for a request that produced no verdict
        (shed after routing, non-model 4xx, timeout attributed to the
        client's own deadline)."""
        if not route.probe or route.level not in MODEL_LEVELS:
            return
        with self._lock:
            breaker = self._breakers[route.level]
            if breaker.state == HALF_OPEN:
                breaker.probe_in_flight = False

    def current_level(self) -> int:
        """The rung a fresh request would be routed to (read-only)."""
        with self._lock:
            for level in MODEL_LEVELS:
                if self._breakers[level].would_admit():
                    return level
            return DICTIONARY_LEVEL

    def stats(self) -> dict:
        with self._lock:
            return {
                "breakers": {
                    LEVEL_NAMES[level]: breaker.snapshot()
                    for level, breaker in self._breakers.items()
                },
                "recoveries": self.recoveries,
                "served_at_level": dict(self.served_at_level),
            }
