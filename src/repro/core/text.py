"""Page tokenization: from raw HTML to sentence/token structures.

Every pipeline stage consumes the same tokenized view of a page, built
once here: the page title plus all free-text blocks, sentence-split and
PoS-tagged by the page's locale bundle. Table contents are *excluded*
from the text view (they are semi-structured data owned by the seed
extractor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..html import extract_text_blocks, parse_html
from ..html.dom import Element
from ..nlp import get_locale, split_sentences
from ..types import ProductPage, Sentence


@dataclass(frozen=True, slots=True)
class PageText:
    """The tokenized free text of one product page."""

    product_id: str
    locale: str
    sentences: tuple[Sentence, ...]

    def token_count(self) -> int:
        return sum(len(sentence) for sentence in self.sentences)


def tokenize_page(
    page: ProductPage, root: Element | None = None
) -> PageText:
    """Tokenize one page's title and description text.

    Args:
        page: the page to tokenize.
        root: an already-parsed DOM of ``page.html`` (e.g. the tree the
            ingest gate built while validating the page); parsed fresh
            when omitted. The output is identical either way.
    """
    if root is None:
        root = parse_html(page.html)
    blocks = extract_text_blocks(root, skip_tables=True)
    nlp = get_locale(page.locale)
    sentences = split_sentences(page.product_id, blocks, nlp)
    return PageText(page.product_id, page.locale, tuple(sentences))


def tokenize_pages(
    pages: Iterable[ProductPage],
    roots: Sequence[Element] | None = None,
) -> list[PageText]:
    """Tokenize a page collection, preserving order.

    ``roots``, when given, must align 1:1 with ``pages`` (pre-parsed
    DOM trees to reuse instead of re-parsing each document).
    """
    if roots is None:
        return [tokenize_page(page) for page in pages]
    return [
        tokenize_page(page, root) for page, root in zip(pages, roots)
    ]


def corpus_token_sentences(
    page_texts: Sequence[PageText],
) -> list[list[str]]:
    """All sentences as plain token-text lists (word2vec input)."""
    return [
        [token.text for token in sentence]
        for page_text in page_texts
        for sentence in page_text.sentences
    ]
