"""Semantic cleaning: the word2vec drift filter (Section V-C).

"A new value with tag *a* should be semantically similar to other
values that are tagged as *a*." The three steps of the paper:

1. group multiword tagged values into single words (``100 % men`` →
   ``100_%_men``) across the whole corpus;
2. train word2vec on that corpus — from scratch *each iteration*,
   because newly discovered entities need vectors and general-domain
   embeddings cannot represent merchant jargon;
3. for each attribute, form a semantic core by iteratively discarding
   the value least similar to the rest until ``n`` values remain, then
   drop any value whose multiplicative similarity against the core
   (footnote 4) falls below the acceptance cut-off.

Two implementation choices adapt the method to corpora far smaller
than the paper's 200k pages (documented in DESIGN.md §4): vectors are
mean-centered over the vocabulary before scoring (the "all-but-the-
top" fix for the anisotropy small SGNS models develop), and the
acceptance cut-off is *relative* — a fraction of the core members'
median score — so it needs no retuning when the corpus grows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ...config import SemanticConfig
from ...embeddings import Word2Vec, multiplicative_similarity
from ...embeddings.similarity import average_pairwise_similarity
from ...types import Extraction
from ..preprocess.matcher import ValueMatcher

_JOINER = "_"


def merged_token(value_key: str) -> str:
    """The single-word form of a (possibly multiword) value key."""
    return value_key.replace(" ", _JOINER)


def merge_values_in_corpus(
    corpus: Sequence[Sequence[str]],
    value_keys: Sequence[str],
) -> list[list[str]]:
    """Replace occurrences of known values with their merged token."""
    matcher = ValueMatcher({"*": list(value_keys)})
    merged_corpus: list[list[str]] = []
    for sentence in corpus:
        spans = matcher.find_spans(sentence)
        if not spans:
            merged_corpus.append(list(sentence))
            continue
        merged: list[str] = []
        position = 0
        for start, end, _ in spans:
            merged.extend(sentence[position:start])
            merged.append(_JOINER.join(sentence[start:end]))
            position = end
        merged.extend(sentence[position:])
        merged_corpus.append(merged)
    return merged_corpus


def _median(sorted_scores: Sequence[float]) -> float:
    """True median of an already-sorted score list.

    Even-length lists average the two middle elements; taking the
    upper one (the old behaviour) biased the acceptance cutoff high
    and over-removed borderline values.
    """
    count = len(sorted_scores)
    middle = count // 2
    if count % 2:
        return sorted_scores[middle]
    return 0.5 * (sorted_scores[middle - 1] + sorted_scores[middle])


@dataclass(frozen=True)
class SemanticStats:
    """Outcome of one semantic-cleaning pass."""

    attributes_cleaned: int
    values_scored: int
    values_removed: int
    removed_by_attribute: dict[str, tuple[str, ...]] = field(
        default_factory=dict
    )


class SemanticCleaner:
    """Per-iteration semantic-drift filter.

    Args:
        config: semantic-cleaning hyperparameters.
        seed: RNG seed for the freshly trained word2vec model.
    """

    def __init__(self, config: SemanticConfig | None = None, seed: int = 0):
        self.config = config or SemanticConfig()
        self.seed = seed
        #: The word2vec model of the most recent :meth:`clean` call;
        #: the bootstrap loop hands it to the next iteration as a
        #: warm-start donor when ``warm_start_embeddings`` is on.
        self.last_model: Word2Vec | None = None

    def clean(
        self,
        extractions: Sequence[Extraction],
        corpus: Sequence[Sequence[str]],
        *,
        warm_start_from: Word2Vec | None = None,
    ) -> tuple[list[Extraction], SemanticStats]:
        """Filter extractions whose values drift from their attribute.

        Args:
            extractions: veto-surviving extractions of this iteration.
            corpus: all tokenized sentences of the product corpus (the
                word2vec training text).
            warm_start_from: optional previously trained model whose
                vectors seed this iteration's word2vec training (see
                :meth:`Word2Vec.train`).

        Returns:
            ``(kept_extractions, stats)``. Attributes with too few
            distinct values, and values without a trained vector, are
            passed through untouched (nothing to judge them against).
        """
        values_by_attribute: dict[str, set[str]] = defaultdict(set)
        for extraction in extractions:
            values_by_attribute[extraction.attribute].add(extraction.value)

        all_values = sorted(
            {value for values in values_by_attribute.values() for value in values}
        )
        if not all_values:
            return list(extractions), SemanticStats(0, 0, 0)

        merged_corpus = merge_values_in_corpus(corpus, all_values)
        model = Word2Vec(
            dim=self.config.embedding_dim,
            window=self.config.embedding_window,
            negatives=self.config.embedding_negatives,
            epochs=self.config.embedding_epochs,
            seed=self.seed,
        ).train(merged_corpus, warm_start_from=warm_start_from)
        self.last_model = model
        # "All-but-the-top": remove the common direction small SGNS
        # models collapse into, else every cosine saturates near 1.
        assert model._input_vectors is not None
        mean_vector = model._input_vectors.mean(axis=0)

        removed: dict[str, set[str]] = defaultdict(set)
        scored = 0
        cleaned_attributes = 0
        for attribute, values in values_by_attribute.items():
            vectors: dict[str, np.ndarray] = {}
            for value in values:
                vector = model.vector(merged_token(value))
                if vector is not None:
                    vectors[value] = vector - mean_vector
            if len(vectors) < self.config.min_core_attribute_values:
                continue
            cleaned_attributes += 1
            core_values = self._semantic_core(vectors)
            core_vectors = [vectors[value] for value in core_values]
            scores = {
                value: multiplicative_similarity(vector, core_vectors)
                for value, vector in vectors.items()
            }
            core_scores = sorted(scores[value] for value in core_values)
            median_core = _median(core_scores)
            cutoff = self.config.accept_threshold * median_core
            for value, score in scores.items():
                scored += 1
                if score < cutoff:
                    removed[attribute].add(value)

        kept = [
            extraction
            for extraction in extractions
            if extraction.value not in removed.get(extraction.attribute, ())
        ]
        stats = SemanticStats(
            attributes_cleaned=cleaned_attributes,
            values_scored=scored,
            values_removed=sum(len(values) for values in removed.values()),
            removed_by_attribute={
                attribute: tuple(sorted(values))
                for attribute, values in removed.items()
            },
        )
        return kept, stats

    def _semantic_core(
        self, vectors: dict[str, np.ndarray]
    ) -> list[str]:
        """Iteratively prune the least-similar value down to core size.

        ``core_size == 0`` disables pruning (the unrestricted-``n``
        setting the paper explores in §VIII-B), returning every value.
        """
        values = sorted(vectors)
        if self.config.core_size == 0:
            return values
        while len(values) > self.config.core_size:
            vector_list = [vectors[value] for value in values]
            worst_index = min(
                range(len(values)),
                key=lambda index: average_pairwise_similarity(
                    index, vector_list
                ),
            )
            values.pop(worst_index)
        return values
