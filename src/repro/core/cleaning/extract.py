"""Converting between BIO-tagged sentences and span extractions.

The cleaning modules reason about :class:`~repro.types.Extraction`
objects (value spans with provenance); after filtering, the surviving
spans are written back into label sequences for the next training round.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from ...nlp.bio import decode_bio, encode_bio
from ...types import Extraction, TaggedSentence


def extractions_from_tagged(
    tagged_sentences: Iterable[TaggedSentence],
) -> list[Extraction]:
    """Decode every labelled span into an :class:`Extraction`."""
    extractions: list[Extraction] = []
    for tagged in tagged_sentences:
        texts = tagged.sentence.texts()
        for start, end, attribute in decode_bio(tagged.labels):
            extractions.append(
                Extraction(
                    product_id=tagged.product_id,
                    attribute=attribute,
                    value=" ".join(texts[start:end]),
                    sentence_index=tagged.sentence.index,
                    start=start,
                    end=end,
                )
            )
    return extractions


def rebuild_tagged(
    tagged_sentences: Sequence[TaggedSentence],
    kept: Iterable[Extraction],
    *,
    drop_unlabelled: bool = True,
) -> list[TaggedSentence]:
    """Write surviving extractions back into label sequences.

    Args:
        tagged_sentences: the sentences the extractions came from.
        kept: extractions that survived cleaning.
        drop_unlabelled: when True, sentences ending up all-O are
            omitted (the bootstrap adds only sentences carrying new
            evidence to the training set).

    Returns:
        Fresh :class:`TaggedSentence` objects with cleaned labels.
    """
    spans_by_sentence: dict[tuple[str, int], list[tuple[int, int, str]]]
    spans_by_sentence = defaultdict(list)
    for extraction in kept:
        spans_by_sentence[
            (extraction.product_id, extraction.sentence_index)
        ].append((extraction.start, extraction.end, extraction.attribute))

    rebuilt: list[TaggedSentence] = []
    for tagged in tagged_sentences:
        key = (tagged.product_id, tagged.sentence.index)
        spans = spans_by_sentence.get(key, [])
        if not spans and drop_unlabelled:
            continue
        labels = encode_bio(len(tagged), spans)
        rebuilt.append(TaggedSentence(tagged.sentence, tuple(labels)))
    return rebuilt
