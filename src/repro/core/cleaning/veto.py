"""The four veto rules — the paper's *only* human-supplied knowledge.

Section V-C, non-semantic cleaning: "(i) symbols: 1-gram entities that
are symbols such as ';' or '*'. (ii) mark-up tags. (iii) unpopular
entities: per each attribute, we order the entities by the number of
items that have been tagged with that entity, and keep only the top
80%. (iv) long values: values that exceed 30 characters."

Crucially, the rules state what a value should **not** be, never what
it should be — that is what keeps them domain-independent (the contrast
the paper draws with Carlson et al.'s domain constraints).
"""

from __future__ import annotations

import math
import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from ...config import VetoConfig
from ...types import Extraction

_MARKUP_RE = re.compile(r"<[^<>]*>|</|&[a-zA-Z]+;|&#")


def is_symbol_value(extraction: Extraction) -> bool:
    """Veto rule (i): a single token with no letter or digit."""
    if extraction.token_count != 1:
        return False
    return not any(char.isalnum() for char in extraction.value)


def is_markup_value(value: str) -> bool:
    """Veto rule (ii): the value contains mark-up fragments."""
    compact = value.replace(" ", "")
    return bool(_MARKUP_RE.search(compact))


def is_long_value(value: str, max_chars: int) -> bool:
    """Veto rule (iv): the value exceeds the character budget."""
    return len(value) > max_chars


@dataclass(frozen=True, slots=True)
class VetoStats:
    """Per-rule discard counts from one veto pass."""

    total: int
    symbol: int
    markup: int
    long: int
    unpopular: int

    @property
    def kept(self) -> int:
        return self.total - self.discarded

    @property
    def discarded(self) -> int:
        return self.symbol + self.markup + self.long + self.unpopular

    @property
    def discard_rate(self) -> float:
        """Fraction of extractions vetoed (paper reports ~10%)."""
        if self.total == 0:
            return 0.0
        return self.discarded / self.total


def apply_veto(
    extractions: Sequence[Extraction],
    config: VetoConfig | None = None,
) -> tuple[list[Extraction], VetoStats]:
    """Filter extractions through the four rules.

    Rules (i), (ii) and (iv) judge each extraction alone; rule (iii)
    ranks each attribute's distinct values by the number of distinct
    products tagged with them and keeps the top
    ``config.keep_top_share`` of the ranked list.

    Returns:
        ``(kept_extractions, stats)``.
    """
    config = config or VetoConfig()
    symbol = markup = long_count = unpopular = 0

    survivors: list[Extraction] = []
    for extraction in extractions:
        if is_symbol_value(extraction):
            symbol += 1
        elif is_markup_value(extraction.value):
            markup += 1
        elif is_long_value(extraction.value, config.max_value_chars):
            long_count += 1
        else:
            survivors.append(extraction)

    # Rule (iii): unpopular entities, per attribute.
    products_by_value: dict[str, dict[str, set[str]]] = defaultdict(
        lambda: defaultdict(set)
    )
    for extraction in survivors:
        products_by_value[extraction.attribute][extraction.value].add(
            extraction.product_id
        )
    allowed: dict[str, frozenset[str]] = {}
    for attribute, value_products in products_by_value.items():
        ranked = sorted(
            value_products,
            key=lambda value: (-len(value_products[value]), value),
        )
        keep = max(1, math.ceil(config.keep_top_share * len(ranked)))
        allowed[attribute] = frozenset(ranked[:keep])

    kept: list[Extraction] = []
    for extraction in survivors:
        if extraction.value in allowed.get(extraction.attribute, ()):
            kept.append(extraction)
        else:
            unpopular += 1

    stats = VetoStats(
        total=len(extractions),
        symbol=symbol,
        markup=markup,
        long=long_count,
        unpopular=unpopular,
    )
    return kept, stats
