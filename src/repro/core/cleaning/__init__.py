"""Cleaning module (Section V-C): veto rules + semantic-drift filter.

Runs inside every bootstrap iteration on the freshly model-tagged data.
"The early removal of probable errors prevents a snowball effect that
leads wrongly tagged items to proliferate in future iterations."
"""

from .extract import extractions_from_tagged, rebuild_tagged
from .semantic import SemanticCleaner, SemanticStats
from .veto import VetoStats, apply_veto

__all__ = [
    "SemanticCleaner",
    "SemanticStats",
    "VetoStats",
    "apply_veto",
    "extractions_from_tagged",
    "rebuild_tagged",
]
