"""Tagger backend selection (the Tagger box of Figure 2).

The bootstrap loop only sees the
:class:`~repro.ml.base.SequenceTagger` protocol; this module maps the
pipeline configuration to a fresh backend instance. A fresh model is
built for every iteration — the paper retrains from scratch on the
grown dataset rather than fine-tuning.
"""

from __future__ import annotations

from ..config import PipelineConfig
from ..errors import ConfigError
from ..ml import CrfTagger, LstmTagger
from ..ml.base import SequenceTagger
from ..perf.cache import FeatureCache


def make_tagger(
    config: PipelineConfig,
    iteration: int = 0,
    feature_cache: FeatureCache | bool | None = None,
) -> SequenceTagger:
    """Build a fresh tagger for one bootstrap iteration.

    Args:
        config: pipeline configuration (``config.tagger`` selects the
            backend).
        iteration: iteration number, folded into stochastic backends'
            seeds so runs stay deterministic yet iterations differ.
        feature_cache: optional shared :class:`FeatureCache` so CRF
            feature extraction is memoized across iterations (each
            iteration still gets a *fresh model*; only the extracted
            feature strings — pure functions of the sentences — are
            reused). ``False`` disables caching entirely: the CRF runs
            the reference string-feature path, re-extracting on every
            call (output-identical, benchmark baseline).
    """
    if config.tagger == "crf":
        return CrfTagger(config.crf, feature_cache=feature_cache)
    lstm_config = config.lstm
    seeded = type(lstm_config)(
        epochs=lstm_config.epochs,
        char_dim=lstm_config.char_dim,
        char_hidden=lstm_config.char_hidden,
        word_dim=lstm_config.word_dim,
        word_hidden=lstm_config.word_hidden,
        dropout=lstm_config.dropout,
        learning_rate=lstm_config.learning_rate,
        seed=lstm_config.seed + iteration,
    )
    if config.tagger == "lstm":
        return LstmTagger(seeded)
    if config.tagger == "ensemble":
        # Imported here to keep core free of a hard extensions import.
        from ..extensions.ensemble import EnsembleTagger

        return EnsembleTagger(
            policy=config.ensemble_policy,
            crf_config=config.crf,
            lstm_config=seeded,
            feature_cache=feature_cache,
        )
    raise ConfigError(f"unknown tagger backend: {config.tagger!r}")
