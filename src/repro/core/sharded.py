"""Sharded bootstrap: one category, bounded memory, many processes.

:class:`ShardedBootstrapper` runs the Figure-1 loop over a
:class:`~repro.corpus.stream.PageSource` instead of a page list. The
full page set is never resident; the run is organized around three
facts about the monolithic pipeline:

1. **Page preparation is per-page.** Gating (minus cross-page dedup),
   tokenization and candidate discovery are pure functions of one
   page. Prep therefore fans shards out to worker processes, each
   writing its shard's tokenized sentences and table candidates to a
   compact gzip cache file, and returning lightweight per-page
   *outcomes*. The parent replays the outcomes **in shard order**
   against a global seen-id set, which reproduces exactly the ledger,
   repair counts and page drops the monolithic
   :class:`~repro.ingest.IngestGate` would have produced — a worker's
   shard-local decisions are always confirmed or overridden the same
   way the sequential gate would have decided (a worker only keeps a
   page its own prefix hasn't claimed; the parent re-checks against
   the global prefix).
2. **Tagging is per-sentence.** The trained model tags each shard's
   unlabeled sentences in a worker process; only span-bearing tagged
   sentences come back (every downstream consumer — candidate
   extraction, cleaning, folding — is a pure function of those), and
   concatenation in shard-index order reproduces the monolithic
   sentence order. Sharded output is therefore **bit-identical** to
   the monolithic path for any shard size and worker count.
3. **Reduction is cheap.** Seed building, cleaning and folding run in
   the parent on merged, already-small structures.

Resumability: with a checkpoint attached, each tag worker snapshots
its own shard (``shard_tag_IIII_SSSS.json.gz``, atomic, checksummed)
before returning; a killed run re-fans only the shards with no
snapshot. The per-iteration snapshot and resume semantics of the base
class are unchanged.

Prep caching: prep output is iteration-invariant and pure in the page
bytes and gate/tokenizer config, so (unless disabled via
``PipelineConfig.enable_prep_cache`` or bypassed because the fault
plan corrupts pages) each shard's artifacts are kept across runs in
:mod:`repro.perf.prep_cache` — checksummed gzip artifacts under
``<checkpoint>/prep_cache`` (or an explicit ``cache_dir``), a bounded
process-global memory tier otherwise. A cache hit replays the exact
recorded per-page outcomes through the same sequential merge, so
cached runs stay bit-identical to uncached ones.

Known (documented) divergences from the monolithic path:

* Shard workers gate with the counted wall-clock soft parse budget
  (``force_soft_budget``) instead of SIGALRM — a page that *exceeds*
  the budget is still rejected, but its ledger detail records the
  measured elapsed time rather than the budget, so a corpus containing
  budget-blowing pages is not bit-ledger-identical. Corpora that stay
  inside the budget (all shipped ones) are unaffected.
* Page-corruption fault hooks (``corrupt_pages``/``dirt``) fire inside
  shard prep workers with decisions derived from ``(plan seed, shard
  index)`` (see :meth:`~repro.runtime.faults.FaultPlan.
  corrupt_shard_pages`): deterministic for any worker count, but the
  set of corrupted pages differs from the monolithic draw, so a
  faulted streamed run is *equivalently* chaotic, not byte-identically
  chaotic. Stage-level fault hooks (including the per-shard
  ``shard_tag`` / ``shard_tag:NNNN`` hooks) match exactly.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib
import shutil
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from ..config import IngestConfig
from ..errors import PageQuarantinedError, PoisonedShardError, StorageError
from ..ingest import IngestGate, Quarantine, QuarantineEntry
from ..perf.cache import FeatureCache
from ..perf.prep_cache import (
    DiskPrepCache,
    PrepStore,
    memory_prep_cache,
    prep_cache_key,
    prep_digest,
)
from ..runtime.memory import MemoryGovernor
from ..runtime.trace import PipelineTrace
from ..types import ProductPage, Sentence, TaggedSentence, Token, Triple
from .bootstrap import (
    BootstrapResult,
    Bootstrapper,
    IterationResult,
    _IterationArtifacts,
    confidence_filtered_tag,
)
from .cleaning import extractions_from_tagged
from .preprocess import Seed
from .preprocess.candidate_discovery import RawCandidate
from .preprocess.training_set import (
    label_page,
    page_table_preferences,
    seed_matcher,
)
from .preprocess.value_cleaning import QueryLogLike
from .text import PageText, tokenize_page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..corpus.stream import PageSource
    from ..embeddings import Word2Vec
    from ..runtime.checkpoint import CheckpointStore
    from ..runtime.faults import FaultPlan
    from ..runtime.pool import ShardFailure, ShardWorkerPool


# -- shard cache files ---------------------------------------------------
#
# One gzip-JSONL file per shard, one line per *kept* (possibly
# repaired) page:
#
#   {"pid": ..., "locale": ...,
#    "sents": [[index, [[text, pos], ...]], ...],
#    "cands": [[attribute, value_key], ...]}
#
# The cache holds everything every later stage needs — tokenized
# sentences for tagging/labeling/embeddings, candidates for the
# table-page split — so raw HTML is parsed exactly once per page.

#: gzip level for shard cache files. They are scratch written once and
#: re-read several times per run (material, corpus, every iteration's
#: tag pass); level 1 compresses several times faster than the default
#: (9) for a few percent more disk — the right trade for the prep hot
#: path.
_CACHE_GZIP_LEVEL = 1


def _cache_path(cache_dir: str, index: int) -> pathlib.Path:
    return pathlib.Path(cache_dir) / f"shard_{index:04d}.jsonl.gz"


def _sentences_from_record(record: dict) -> list[Sentence]:
    return [
        Sentence(
            product_id=record["pid"],
            index=index,
            tokens=tuple(Token(text, pos) for text, pos in tokens),
        )
        for index, tokens in record["sents"]
    ]


def _page_text_from_record(record: dict) -> PageText:
    return PageText(
        record["pid"],
        record["locale"],
        tuple(_sentences_from_record(record)),
    )


def _iter_cache(
    cache_dir: str, index: int, dropped: frozenset[str]
) -> Iterator[dict]:
    """One shard's cached page records, minus globally-dropped pages."""
    path = _cache_path(cache_dir, index)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record["pid"] not in dropped:
                yield record


# -- prep workers --------------------------------------------------------


@dataclass(frozen=True)
class _PrepContext:
    """Everything a prep worker needs (pickled once per chunk)."""

    source: "PageSource"
    ingest: IngestConfig | None
    cache_dir: str
    faults: "FaultPlan | None" = None


def _discover_page_candidates(page: ProductPage, root=None) -> list[list[str]]:
    """One page's dictionary-table rows as ``[attribute, value]``."""
    from .preprocess.candidate_discovery import discover_page_candidates

    return [
        [candidate.attribute, candidate.value_key]
        for candidate in discover_page_candidates(page, root)
    ]


def _corrupt_shard_records(
    records: list, faults: "FaultPlan", index: int
) -> tuple[list, dict, int]:
    """Run the page-corruption hook over one shard's records.

    Only :class:`~repro.types.ProductPage` records are corruptible;
    malformed-row :class:`QuarantineEntry` markers keep their relative
    positions. Pages a ``dirt`` fault *adds* land after the shard's
    original records.
    """
    page_slots = [
        slot
        for slot, record in enumerate(records)
        if not isinstance(record, QuarantineEntry)
    ]
    pages = [records[slot] for slot in page_slots]
    pages, injected, corrupted = faults.corrupt_shard_pages(pages, index)
    if len(page_slots) == len(records):
        return pages, injected, corrupted
    for slot, page in zip(page_slots, pages):
        records[slot] = page
    records.extend(pages[len(page_slots):])
    return records, injected, corrupted


def _prep_shard(context: _PrepContext, index: int):
    """Gate + tokenize + mine one shard (worker process).

    Writes the shard cache file atomically and returns
    ``(index, outcomes, warnings, fault_counts)`` where each outcome
    is, in shard page order, one of::

        ("row", entry_dict)                     # malformed JSONL row
        ("q",   entry_dict)                     # quarantined page
        ("k",   pid, locale, repairs, cands)    # kept page

    and ``fault_counts`` is ``None`` or the ``(injected, corrupted)``
    tallies of the page-corruption hook for the parent to absorb.

    The gate runs with a shard-local seen-id set and the wall-clock
    soft parse budget; the parent's merge replays the outcomes against
    the *global* seen-id set (see :meth:`ShardedBootstrapper._prep`).
    The html of each kept page is lexed and parsed exactly once: the
    gate's tree is reused for tokenization and candidate mining.
    """
    gate = (
        IngestGate(context.ingest, force_soft_budget=True)
        if context.ingest is not None
        else None
    )
    seen_ids: set[str] = set()
    warnings: dict[str, int] = {}
    outcomes: list[tuple] = []
    records = context.source.shard(index)
    fault_counts = None
    if context.faults is not None:
        records, injected, corrupted = _corrupt_shard_records(
            list(records), context.faults, index
        )
        fault_counts = (injected, corrupted)
    final = _cache_path(context.cache_dir, index)
    temp = final.parent / f".{final.name}.tmp"
    final.parent.mkdir(parents=True, exist_ok=True)
    with gzip.open(
        temp, "wt", encoding="utf-8", compresslevel=_CACHE_GZIP_LEVEL
    ) as cache:
        for record in records:
            if isinstance(record, QuarantineEntry):
                outcomes.append(("row", record.to_dict()))
                continue
            page = record
            repairs: list[str] = []
            root = None
            if gate is not None:
                entry, kept, repairs, root = gate.gate_page_prepared(
                    page, seen_ids, warnings
                )
                if entry is not None:
                    outcomes.append(("q", entry.to_dict()))
                    continue
                assert kept is not None
                seen_ids.add(kept.product_id)
                page = kept
            page_text = tokenize_page(page, root)
            candidates = _discover_page_candidates(page, root)
            outcomes.append(
                ("k", page.product_id, page.locale, repairs, candidates)
            )
            cache.write(
                json.dumps(
                    {
                        "pid": page.product_id,
                        "locale": page.locale,
                        "sents": [
                            [
                                sentence.index,
                                [[t.text, t.pos] for t in sentence.tokens],
                            ]
                            for sentence in page_text.sentences
                        ],
                        "cands": candidates,
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
    os.replace(temp, final)
    return index, outcomes, warnings, fault_counts


# -- tag workers ---------------------------------------------------------


@dataclass(frozen=True)
class _TagContext:
    """Everything a tag worker needs (pickled once per chunk)."""

    cache_dir: str
    checkpoint_dir: str | None
    iteration: int
    model: object
    min_confidence: float
    dropped: dict[int, frozenset[str]]
    faults: "FaultPlan | None"


def _span_bearing(tagged: Sequence[TaggedSentence]) -> list[TaggedSentence]:
    return [
        sentence
        for sentence in tagged
        if any(label != "O" for label in sentence.labels)
    ]


def _tag_shard(context: _TagContext, index: int):
    """Tag one shard's unlabeled sentences (worker process).

    Returns ``(index, span_bearing_tagged, sentence_count)``. With a
    checkpoint attached, a shard snapshot is loaded if present (so a
    retried chunk never re-tags a shard that completed before a pool
    fault) and written before returning otherwise.
    """
    if context.faults is not None:
        context.faults.fire("shard_tag", context.iteration)
        context.faults.fire(f"shard_tag:{index:04d}", context.iteration)
    store: "CheckpointStore | None" = None
    if context.checkpoint_dir is not None:
        from ..runtime.checkpoint import CheckpointStore

        store = CheckpointStore(context.checkpoint_dir)
        cached = store.load_shard_tags(context.iteration, index)
        if cached is not None:
            return index, cached[0], cached[1]
    dropped = context.dropped.get(index, frozenset())
    sentences: list[Sentence] = []
    for record in _iter_cache(context.cache_dir, index, dropped):
        if record["cands"]:
            continue  # table-bearing page: labelled, not tagged
        sentences.extend(_sentences_from_record(record))
    model = context.model
    if context.min_confidence > 0.0 and hasattr(
        model, "tag_with_confidence"
    ):
        tagged, _ = confidence_filtered_tag(
            model, sentences, context.min_confidence
        )
    else:
        tagged = model.tag(sentences)
    spans = _span_bearing(tagged)
    if store is not None:
        try:
            store.write_shard_tags(
                context.iteration, index, spans, len(sentences)
            )
        except (StorageError, OSError):
            # The shard snapshot is a resume optimization; on a full
            # or dying disk the tagged spans still flow back to the
            # parent — never fail the shard over it.
            pass
    return index, spans, len(sentences)


# -- merge structures ----------------------------------------------------


@dataclass
class _PrepSummary:
    """The parent-side reduction of every shard's prep outcomes."""

    candidates: list[RawCandidate]
    quarantine: Quarantine
    repaired: dict[str, int]
    dropped: dict[int, frozenset[str]]
    pages_kept: int
    locale: str | None
    soft_budget_trips: int
    row_errors: int
    #: Shards that exhausted their pool retry budget during prep and
    #: were quarantined as ``check="poisoned_shard"``; every later
    #: stage (material, corpus, tagging) skips them.
    poisoned: frozenset[int] = frozenset()


@dataclass(frozen=True)
class _StreamedMaterial:
    """Streamed stand-in for :class:`TrainingMaterial`."""

    seed_labeled: list[TaggedSentence]
    labeled_total: int
    text_triples: frozenset[Triple]
    unlabeled_pages: int


def _duplicate_entry(product_id: str) -> QuarantineEntry:
    """The exact entry the monolithic gate writes for a duplicate."""
    return QuarantineEntry(
        page_id=product_id,
        check="duplicate_id",
        error="duplicate_id",
        detail=(
            f"product id {product_id!r} already seen in this collection"
        ),
    )


# -- the sharded bootstrapper -------------------------------------------


class ShardedBootstrapper(Bootstrapper):
    """Figure-1 bootstrap over a streamed, sharded corpus.

    Args:
        config: pipeline configuration (as :class:`Bootstrapper`).
        attribute_subset: specialized-model restriction (as base).
        shard_workers: worker processes per fan-out. None picks
            :func:`~repro.runtime.runner.default_workers` (visible
            CPUs, ``REPRO_WORKERS``-aware); an explicit value is used
            as-is, so tests can force a real pool on a 1-CPU box.
            ``1`` runs shards inline (serial path = parallel path
            minus the pool).
    """

    def __init__(
        self,
        config=None,
        attribute_subset=None,
        *,
        shard_workers: int | None = None,
    ):
        super().__init__(config, attribute_subset)
        self.shard_workers = shard_workers

    def _workers(self, count: int) -> int:
        from ..runtime.runner import default_workers

        if self.shard_workers is not None:
            return max(1, self.shard_workers)
        if self.config.pool_workers is not None:
            return max(1, self.config.pool_workers)
        return default_workers(count)

    def run_source(
        self,
        source: "PageSource",
        query_log: QueryLogLike,
        trace: PipelineTrace | None = None,
        *,
        checkpoint: "CheckpointStore | None" = None,
        resume: bool = True,
        faults: "FaultPlan | None" = None,
        cache_dir: str | os.PathLike | None = None,
    ) -> BootstrapResult:
        """Execute the bootstrap over a shard source.

        Bit-identical to :meth:`Bootstrapper.run` on the materialized
        page list of the same source, for any shard size and worker
        count (see the module docstring for the two documented
        divergences). The returned result carries ``material=None`` —
        the training material is never materialized.

        Args:
            source: the category's page shards.
            query_log: search-log membership filter.
            trace: optional stage-timing sink.
            checkpoint: optional store; iteration snapshots work as in
                the base class, plus per-shard tag snapshots let a
                killed run resume mid-iteration without re-tagging
                completed shards.
            resume: with ``checkpoint``, False restarts from scratch.
            faults: optional fault plan (stage and page hooks).
            cache_dir: directory for the shard cache files — with the
                prep cache enabled this becomes a persistent prep
                artifact root (a keyed subdirectory holds the files).
                Defaults to ``<checkpoint>/prep_cache`` (retained
                across runs) with a checkpoint, or a self-cleaning
                temporary directory (backed by the process-global
                memory tier) without one.
        """
        trace = trace if trace is not None else PipelineTrace()
        self._checkpoint_disabled = False
        self._checkpoint_warning = None
        if checkpoint is not None and checkpoint.faults is None:
            checkpoint.faults = faults
        governor: MemoryGovernor | None = None
        if self.config.memory_budget_mb is not None or (
            faults is not None and faults.has_memory_faults()
        ):
            governor = MemoryGovernor(
                self.config.memory_budget_mb, faults=faults
            )
        # Page-corrupting fault plans poison prep output: never record
        # it as clean, never mask it with a clean artifact.
        use_cache = self.config.enable_prep_cache and not (
            faults is not None and faults.has_page_faults()
        )
        digest = prep_digest(
            self.config.ingest if self.config.ingest.enabled else None
        )
        key = prep_cache_key(source.fingerprint(), digest)
        prep_store: PrepStore | None = None
        owned_tmp: tempfile.TemporaryDirectory | None = None
        persistent_root: pathlib.Path | None = None
        disk: DiskPrepCache | None = None
        if cache_dir is not None:
            persistent_root = pathlib.Path(cache_dir)
        elif checkpoint is not None:
            persistent_root = (
                checkpoint.directory / "prep_cache"
                if use_cache
                else checkpoint.directory / "shard_cache"
            )
        if persistent_root is not None:
            persistent_root.mkdir(parents=True, exist_ok=True)
            if use_cache:
                disk = DiskPrepCache(persistent_root, key, faults=faults)
                if disk.contended:
                    # Another live run holds this cache directory's
                    # advisory lock. Sharing the keyed subdirectory
                    # would race its prune/seal cycle, so degrade to a
                    # private scratch directory: correct output, no
                    # cross-run artifact reuse this run.
                    disk.close()
                    disk = None
                    trace.count("prep_cache_contended", runs=1)
                    owned_tmp = tempfile.TemporaryDirectory(
                        prefix="repro_shard_scratch_"
                    )
                    cache = pathlib.Path(owned_tmp.name)
                else:
                    cache = disk.directory
                    prep_store = PrepStore(
                        cache_dir=str(cache),
                        source_fingerprint=source.fingerprint(),
                        digest=digest,
                        disk=disk,
                    )
            else:
                cache = persistent_root
        else:
            owned_tmp = tempfile.TemporaryDirectory(
                prefix="repro_shard_cache_"
            )
            cache = pathlib.Path(owned_tmp.name)
            if use_cache:
                prep_store = PrepStore(
                    cache_dir=str(cache),
                    source_fingerprint=source.fingerprint(),
                    digest=digest,
                    memory=memory_prep_cache(),
                )
        from ..runtime.pool import ShardWorkerPool

        pool = ShardWorkerPool(self._workers(source.shard_count))
        try:
            return self._run_source(
                source,
                query_log,
                trace,
                str(cache),
                checkpoint,
                resume,
                faults,
                prep_store,
                pool=pool,
                governor=governor,
            )
        finally:
            pool.close()
            if disk is not None:
                disk.close()
            if owned_tmp is not None:
                owned_tmp.cleanup()
            elif cache_dir is None and not use_cache:
                # Checkpoint-owned plain shard cache: scaffolding only
                # — prep rebuilds it deterministically on resume. The
                # prep-cache directory, by contrast, is the persistent
                # artifact store and is deliberately retained.
                shutil.rmtree(cache, ignore_errors=True)

    def _run_source(
        self,
        source: "PageSource",
        query_log: QueryLogLike,
        trace: PipelineTrace,
        cache: str,
        checkpoint: "CheckpointStore | None",
        resume: bool,
        faults: "FaultPlan | None",
        prep_store: PrepStore | None = None,
        *,
        pool: "ShardWorkerPool",
        governor: "MemoryGovernor | None" = None,
    ) -> BootstrapResult:
        prep = self._stage(
            trace, faults, "shard_prep", None,
            lambda stage: self._prep(
                stage, source, cache, trace, faults, prep_store,
                pool=pool, governor=governor,
            ),
        )
        stub_pages = (
            [ProductPage("", source.category, "", prep.locale)]
            if prep.locale is not None
            else []
        )
        seed = self._stage(
            trace, faults, "seed_build", None,
            lambda stage: self._build_seed(
                stage, stub_pages, query_log, prep.candidates
            ),
        )
        material = self._stage(
            trace, faults, "training_material", None,
            lambda stage: self._stream_material(
                stage, cache, source.shard_count, prep, seed
            ),
        )

        attributes = seed.attributes
        seed_triples = frozenset(seed.table_triples | material.text_triples)
        corpus = (
            self._collect_corpus(cache, source.shard_count, prep)
            if self.config.enable_semantic_cleaning
            else []
        )

        seed_labeled = material.seed_labeled
        dataset: list[TaggedSentence] = list(seed_labeled)
        cumulative: set[Triple] = set(seed_triples)
        iterations: list[IterationResult] = []
        feature_cache: FeatureCache | bool | None = None
        if self.config.tagger in ("crf", "ensemble"):
            feature_cache = (
                FeatureCache(window=self.config.crf.window)
                if self.config.enable_feature_cache
                else False
            )
        warm_models: list["Word2Vec | None"] = [None]
        start_iteration = 1
        if checkpoint is not None:
            try:
                restored = self._open_source_checkpoint(
                    checkpoint, resume, source, seed_triples, attributes
                )
            except StorageError as error:
                self._disable_checkpoint(trace, error)
                restored = None
            if restored is not None:
                iterations = list(restored.results)
                dataset = restored.dataset
                cumulative = set(iterations[-1].triples)
                start_iteration = len(iterations) + 1
                trace.count(
                    "checkpoint_resume",
                    iterations=restored.completed_iterations,
                )
            if self.config.ingest.enabled and not self._checkpoint_disabled:
                try:
                    checkpoint.record_quarantine(
                        prep.quarantine.to_payload()
                    )
                except StorageError as error:
                    self._disable_checkpoint(trace, error)
        halted_reason: str | None = None
        halted_at: int | None = None
        for iteration in range(
            start_iteration, self.config.iterations + 1
        ):
            result, artifacts = self._iterate_sharded(
                iteration,
                dataset,
                cache,
                source.shard_count,
                prep,
                corpus,
                cumulative,
                trace,
                faults,
                feature_cache=feature_cache,
                warm_models=warm_models,
                checkpoint=checkpoint,
                pool=pool,
                governor=governor,
            )
            halted_reason = self._health_trip(result, artifacts, iterations)
            if halted_reason is not None:
                halted_at = iteration
                trace.count(
                    "circuit_breaker", iteration, **{halted_reason: 1}
                )
                break
            iterations.append(result)
            dataset = self._stage(
                trace, faults, "fold_dataset", iteration,
                lambda stage: self._fold(stage, seed_labeled, artifacts),
            )
            if checkpoint is not None:
                self._stage(
                    trace, faults, "checkpoint_write", iteration,
                    lambda stage: self._snapshot(
                        stage, checkpoint, result, dataset
                    ),
                )
                if not self._checkpoint_disabled:
                    # The iteration snapshot supersedes its shard files.
                    checkpoint.clear_shard_tags(iteration)
        if isinstance(feature_cache, FeatureCache):
            trace.count(
                "feature_cache",
                hits=feature_cache.hits,
                misses=feature_cache.misses,
            )
        if governor is not None and governor.samples:
            trace.count("memory_pressure", **governor.counters())
        self._record_peak_rss(trace)
        return BootstrapResult(
            seed=seed,
            material=None,
            seed_triples=seed_triples,
            iterations=tuple(iterations),
            attributes=attributes,
            quarantine=(
                prep.quarantine
                if self.config.ingest.enabled or len(prep.quarantine)
                else None
            ),
            halted_reason=halted_reason,
            halted_at_iteration=halted_at,
        )

    # -- prep + deterministic merge -------------------------------------

    def _prep(
        self,
        stage,
        source: "PageSource",
        cache: str,
        trace: PipelineTrace,
        faults: "FaultPlan | None" = None,
        prep_store: PrepStore | None = None,
        *,
        pool: "ShardWorkerPool",
        governor: "MemoryGovernor | None" = None,
    ) -> _PrepSummary:
        """Fan prep out per shard, then replay outcomes sequentially.

        The replay is the determinism keystone: outcomes are walked in
        shard order (= corpus order) against a global seen-id set, so
        cross-shard duplicates are quarantined exactly where the
        monolithic gate would have quarantined them, and the merged
        ledger/repair counts/page drops match bit-for-bit. Shards with
        a valid prep-cache artifact skip the fan-out and feed their
        recorded outcomes straight into the same replay — a cached run
        and an uncached run are indistinguishable past this point.
        """
        page_faults = faults is not None and faults.has_page_faults()
        context = _PrepContext(
            source=source,
            ingest=(
                self.config.ingest if self.config.ingest.enabled else None
            ),
            cache_dir=cache,
            faults=faults if page_faults else None,
        )
        indices = list(range(source.shard_count))
        shard_results: dict[int, tuple[list, dict]] = {}
        pending: list[int] = []
        for index in indices:
            if prep_store is not None:
                loaded = prep_store.load(index)
                if loaded is not None:
                    shard_results[index] = loaded
                    continue
            pending.append(index)
        dedup = self.config.ingest.enabled
        strict = dedup and self.config.ingest.policy == "strict"
        corrupted_pages = 0
        poisoned_failures: dict[int, "ShardFailure"] = {}
        if pending:
            max_workers = None
            if governor is not None and governor.under_pressure():
                max_workers = governor.throttle_workers(
                    self._workers(len(pending))
                )
                governor.relieve()
            results, failures, report = pool.run(
                _prep_shard,
                context,
                pending,
                stage="shard_prep",
                faults=faults,
                max_workers=max_workers,
            )
            for index, outcomes, warnings, fault_counts in results.values():
                shard_results[index] = (outcomes, warnings)
                if prep_store is not None:
                    prep_store.store(index, outcomes, warnings)
                if fault_counts is not None and faults is not None:
                    injected, corrupted = fault_counts
                    faults.absorb_injected(injected)
                    corrupted_pages += corrupted
            poisoned_failures = dict(failures)
            for index, failure in poisoned_failures.items():
                if strict:
                    raise PoisonedShardError(
                        "shard_prep", index, failure.attempts, failure.detail
                    )
                # A killed attempt may have sealed the atomic cache
                # write before dying; remove the artifact so material/
                # corpus streaming and tagging all see the same hole.
                cache_file = _cache_path(cache, index)
                cache_file.unlink(missing_ok=True)
                cache_file.with_name(
                    f"shard_{index:04d}.meta.json"
                ).unlink(missing_ok=True)
            counts = report.as_counts()
            if any(counts.values()):
                trace.count("pool_supervision", **counts)
        if corrupted_pages:
            trace.count("pages_corrupted", pages=corrupted_pages)
        seen: set[str] = set()
        ledger = Quarantine()
        repaired: dict[str, int] = {}
        dropped: dict[int, frozenset[str]] = {}
        candidates: list[RawCandidate] = []
        kept = 0
        locale: str | None = None
        soft_trips = 0
        row_errors = 0
        for index in indices:
            if index in poisoned_failures:
                failure = poisoned_failures[index]
                ledger.add(
                    QuarantineEntry(
                        page_id=f"shard-{index:04d}",
                        check="poisoned_shard",
                        error=failure.reason,
                        detail=(
                            f"prep shard {index} failed "
                            f"{failure.attempts} attempts: {failure.detail}"
                        ),
                        source="pool",
                    )
                )
                continue
            outcomes, warnings = shard_results[index]
            soft_trips += warnings.get("parse_budget_soft", 0)
            shard_drops: set[str] = set()
            for outcome in outcomes:
                kind = outcome[0]
                if kind == "row":
                    ledger.add(QuarantineEntry.from_dict(outcome[1]))
                    row_errors += 1
                    continue
                if kind == "q":
                    entry = QuarantineEntry.from_dict(outcome[1])
                    if (
                        dedup
                        and entry.check != "page_bytes"
                        and entry.page_id in seen
                    ):
                        # The sequential gate checks duplicate_id
                        # before every check but page_bytes; a worker
                        # can't see ids kept by earlier shards.
                        entry = _duplicate_entry(entry.page_id)
                    if strict:
                        raise PageQuarantinedError(
                            entry.page_id, entry.check, entry.detail
                        )
                    ledger.add(entry)
                    continue
                _, pid, page_locale, repairs, page_cands = outcome
                if dedup and pid in seen:
                    entry = _duplicate_entry(pid)
                    if strict:
                        raise PageQuarantinedError(
                            entry.page_id, entry.check, entry.detail
                        )
                    ledger.add(entry)
                    shard_drops.add(pid)
                    continue
                seen.add(pid)
                kept += 1
                if locale is None:
                    locale = page_locale
                for check in repairs:
                    repaired[check] = repaired.get(check, 0) + 1
                candidates.extend(
                    RawCandidate(pid, attribute, value)
                    for attribute, value in page_cands
                )
            if shard_drops:
                dropped[index] = frozenset(shard_drops)
        counts = ledger.counts_by_check()
        if counts:
            trace.count("quarantine", **counts)
        if repaired:
            trace.count("ingest_repair", **repaired)
        if soft_trips:
            trace.count("parse_budget_soft", trips=soft_trips)
        if prep_store is not None:
            trace.count(
                "prep_cache",
                hits=prep_store.hits,
                misses=prep_store.misses,
            )
            if prep_store.disabled:
                trace.count(
                    "prep_cache_disabled",
                    failures=prep_store.write_failures,
                )
        stage.add(
            pages_in=source.page_count,
            pages_kept=kept,
            quarantined=len(ledger),
            repaired=sum(repaired.values()),
            shards=source.shard_count,
            candidates=len(candidates),
            cached_shards=(
                prep_store.hits if prep_store is not None else 0
            ),
        )
        return _PrepSummary(
            candidates=candidates,
            quarantine=ledger,
            repaired=repaired,
            dropped=dropped,
            pages_kept=kept,
            locale=locale,
            soft_budget_trips=soft_trips,
            row_errors=row_errors,
            poisoned=frozenset(poisoned_failures),
        )

    # -- streamed material + corpus -------------------------------------

    def _stream_material(
        self,
        stage,
        cache: str,
        shard_count: int,
        prep: _PrepSummary,
        seed: Seed,
    ) -> _StreamedMaterial:
        """Seed-label table pages shard-by-shard; count the rest.

        Reproduces :func:`~repro.core.preprocess.training_set.
        build_training_material` over the cached corpus without holding
        it: pages stream through one shard at a time, labelled
        sentences accumulate only up to ``max_labeled_sentences``
        (text triples — the seed's "iteration 0" output — are always
        collected in full, exactly as the monolithic path does before
        the cap is applied).
        """
        matcher = seed_matcher(seed)
        preferences = page_table_preferences(prep.candidates, seed)
        cap = self.config.max_labeled_sentences
        labeled: list[TaggedSentence] = []
        labeled_total = 0
        unlabeled_pages = 0
        text_triples: set[Triple] = set()
        for index in range(shard_count):
            if index in prep.poisoned:
                continue
            for record in _iter_cache(
                cache, index, prep.dropped.get(index, frozenset())
            ):
                if not record["cands"]:
                    unlabeled_pages += 1
                    continue
                page_text = _page_text_from_record(record)
                page_labeled, page_triples = label_page(
                    page_text,
                    matcher,
                    preferences.get(page_text.product_id, {}),
                )
                text_triples.update(page_triples)
                labeled_total += len(page_labeled)
                if cap is None:
                    labeled.extend(page_labeled)
                elif len(labeled) < cap:
                    labeled.extend(page_labeled[: cap - len(labeled)])
        stage.add(
            labeled_sentences=labeled_total,
            unlabeled_pages=unlabeled_pages,
        )
        return _StreamedMaterial(
            seed_labeled=self._seed_labeled(labeled),
            labeled_total=labeled_total,
            text_triples=frozenset(text_triples),
            unlabeled_pages=unlabeled_pages,
        )

    def _collect_corpus(
        self, cache: str, shard_count: int, prep: _PrepSummary
    ) -> list[list[str]]:
        """All pages' token sentences (word2vec input), corpus order.

        Only built when semantic cleaning is enabled — it is the one
        remaining corpus-sized in-memory structure, so paper-scale runs
        should disable semantic cleaning or budget for it (see
        ``docs/architecture.md`` §12).
        """
        corpus: list[list[str]] = []
        for index in range(shard_count):
            if index in prep.poisoned:
                continue
            for record in _iter_cache(
                cache, index, prep.dropped.get(index, frozenset())
            ):
                for _, tokens in record["sents"]:
                    corpus.append([text for text, _ in tokens])
        return corpus

    # -- sharded iteration ----------------------------------------------

    def _iterate_sharded(
        self,
        iteration: int,
        dataset: list[TaggedSentence],
        cache: str,
        shard_count: int,
        prep: _PrepSummary,
        corpus: list[list[str]],
        cumulative: set[Triple],
        trace: PipelineTrace,
        faults: "FaultPlan | None",
        feature_cache: FeatureCache | bool | None = None,
        warm_models: list["Word2Vec | None"] | None = None,
        checkpoint: "CheckpointStore | None" = None,
        *,
        pool: "ShardWorkerPool",
        governor: "MemoryGovernor | None" = None,
    ) -> tuple[IterationResult, _IterationArtifacts]:
        if self._checkpoint_disabled:
            checkpoint = None
        if not dataset:
            from ..errors import TrainingError

            raise TrainingError(
                "seed produced no labelled sentences; the category has "
                "no usable dictionary tables"
            )
        model = self._stage(
            trace, faults, "tagger_train", iteration,
            lambda stage: self._train(
                stage, iteration, dataset, feature_cache
            ),
        )
        self._count_trainer_warnings(model, iteration, trace)
        tagged, extractions = self._stage(
            trace, faults, "tagger_tag", iteration,
            lambda stage: self._tag_sharded(
                stage,
                model,
                iteration,
                cache,
                shard_count,
                prep,
                checkpoint,
                faults,
                trace,
                pool=pool,
                governor=governor,
            ),
        )
        return self._finish_iteration(
            iteration,
            dataset,
            tagged,
            extractions,
            corpus,
            cumulative,
            trace,
            faults,
            warm_models=warm_models,
        )

    def _tag_sharded(
        self,
        stage,
        model,
        iteration: int,
        cache: str,
        shard_count: int,
        prep: _PrepSummary,
        checkpoint: "CheckpointStore | None",
        faults: "FaultPlan | None",
        trace: PipelineTrace,
        *,
        pool: "ShardWorkerPool",
        governor: "MemoryGovernor | None" = None,
    ) -> tuple[list[TaggedSentence], list]:
        """Fan tagging out per shard; merge in shard-index order."""
        shard_results: list[tuple[list[TaggedSentence], int] | None] = [
            None
        ] * shard_count
        pending: list[int] = []
        resumed = 0
        for index in range(shard_count):
            if index in prep.poisoned:
                # Poisoned during prep: the shard has no cache file and
                # is already quarantined — tag nothing for it.
                shard_results[index] = ([], 0)
                continue
            if checkpoint is not None:
                cached = checkpoint.load_shard_tags(iteration, index)
                if cached is not None:
                    shard_results[index] = cached
                    resumed += 1
                    continue
            pending.append(index)
        strict = (
            self.config.ingest.enabled
            and self.config.ingest.policy == "strict"
        )
        if pending:
            max_workers = None
            if governor is not None and governor.under_pressure():
                max_workers = governor.throttle_workers(
                    self._workers(len(pending))
                )
                governor.relieve()
            context = _TagContext(
                cache_dir=cache,
                checkpoint_dir=(
                    str(checkpoint.directory)
                    if checkpoint is not None
                    else None
                ),
                iteration=iteration,
                model=model,
                min_confidence=self.config.min_confidence,
                dropped=prep.dropped,
                faults=faults,
            )
            results, failures, report = pool.run(
                _tag_shard,
                context,
                pending,
                stage="shard_tag",
                faults=faults,
                max_workers=max_workers,
            )
            for index, spans, count in results.values():
                shard_results[index] = (spans, count)
            if failures:
                poisoned = 0
                for index, failure in sorted(failures.items()):
                    if strict:
                        raise PoisonedShardError(
                            "shard_tag",
                            index,
                            failure.attempts,
                            failure.detail,
                        )
                    prep.quarantine.add(
                        QuarantineEntry(
                            page_id=f"shard-{index:04d}",
                            check="poisoned_shard",
                            error=failure.reason,
                            detail=(
                                f"tag shard {index} (iteration "
                                f"{iteration}) failed {failure.attempts} "
                                f"attempts: {failure.detail}"
                            ),
                            source="pool",
                        )
                    )
                    shard_results[index] = ([], 0)
                    poisoned += 1
                trace.count(
                    "quarantine", iteration, poisoned_shard=poisoned
                )
            counts = report.as_counts()
            if any(counts.values()):
                trace.count("pool_supervision", iteration, **counts)
        if resumed:
            trace.count("shard_resume", iteration, shards=resumed)
        merged: list[TaggedSentence] = []
        total_sentences = 0
        for entry in shard_results:
            assert entry is not None
            spans, count = entry
            merged.extend(spans)
            total_sentences += count
        extractions = extractions_from_tagged(merged)
        stage.add(
            sentences=total_sentences,
            extractions=len(extractions),
            shards=shard_count,
        )
        return merged, extractions

    # -- checkpoint identity --------------------------------------------

    def _open_source_checkpoint(
        self,
        checkpoint: "CheckpointStore",
        resume: bool,
        source: "PageSource",
        seed_triples: frozenset[Triple],
        attributes: tuple[str, ...],
    ):
        """Validate/create the store against the *source* identity."""
        from ..runtime.checkpoint import (
            seed_digest,
            source_run_fingerprint,
        )

        fingerprint = source_run_fingerprint(
            source.fingerprint(), self.config, self.attribute_subset
        )
        digest = seed_digest(seed_triples, attributes)
        if resume and checkpoint.has_run():
            checkpoint.validate(fingerprint, digest)
            return checkpoint.load_resume_state()
        checkpoint.begin(fingerprint, digest, self.config.iterations)
        return None
