"""The bootstrap loop — Figure 1 of the paper.

Per iteration: train the tagger on the current labelled dataset, tag
the unlabeled pool, veto syntactically malformed extractions, filter
semantic drift, fold the surviving evidence back into the dataset, and
accumulate the surviving triples. The stopping criterion is a fixed
iteration count (the paper uses 5).

Resilience: every stage body runs through :meth:`Bootstrapper._stage`,
which retries a failed stage up to ``config.stage_retries`` times
(stage bodies are pure functions of their inputs, so a retry of a
transient fault reproduces the uninterrupted output bit-identically)
and records ``stage_retry`` / ``fault_injected`` counter events on the
trace. The optional cleaning stages degrade further: when their retries
are exhausted the stage is skipped with a ``stage_skip`` counter rather
than failing the run — cleaning refines output, it is not required for
one. With a ``checkpoint`` store attached, each completed iteration is
snapshotted and ``run()`` resumes from the last snapshot instead of
recomputing finished cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import PipelineConfig
from ..errors import FaultInjectionError, TrainingError
from ..types import (
    Extraction,
    ProductPage,
    Sentence,
    TaggedSentence,
    Triple,
)
from .cleaning import (
    SemanticCleaner,
    SemanticStats,
    VetoStats,
    apply_veto,
    extractions_from_tagged,
    rebuild_tagged,
)
from .preprocess import (
    Seed,
    build_seed,
    build_training_material,
    discover_candidates,
)
from .preprocess.aggregation import AttributeClusters
from .preprocess.training_set import TrainingMaterial
from .preprocess.value_cleaning import QueryLogLike
from ..ingest import IngestGate, IngestResult, Quarantine
from ..perf.cache import FeatureCache
from ..runtime.trace import PipelineTrace
from .tagger import make_tagger
from .text import PageText, corpus_token_sentences, tokenize_pages

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..embeddings import Word2Vec
    from ..runtime.checkpoint import CheckpointStore
    from ..runtime.faults import FaultPlan


@dataclass(frozen=True)
class IterationResult:
    """Observables of one Tagger–Cleaner cycle.

    Attributes:
        iteration: 1-based cycle number.
        triples: cumulative system output after this cycle (seed triples
            plus every surviving bootstrap extraction so far).
        new_triples: triples first contributed by this cycle.
        candidate_extractions: raw span count the tagger produced.
        veto_stats: per-rule discard counts (None with syntactic
            cleaning disabled).
        semantic_stats: drift-filter counts (None with semantic
            cleaning disabled).
        dataset_sentences: labelled sentences feeding the next cycle.
    """

    iteration: int
    triples: frozenset[Triple]
    new_triples: frozenset[Triple]
    candidate_extractions: int
    veto_stats: VetoStats | None
    semantic_stats: SemanticStats | None
    dataset_sentences: int


@dataclass(frozen=True)
class _IterationArtifacts:
    """Intermediate products one cycle hands to the next.

    Threaded through return values (never stashed on the bootstrapper)
    so ``Bootstrapper.run`` is re-entrant: two interleaved or
    concurrent runs of the same instance cannot observe each other's
    extractions.
    """

    kept_extractions: list[Extraction]
    tagged: list[TaggedSentence]


@dataclass(frozen=True)
class BootstrapResult:
    """Everything a bootstrap run produced.

    Attributes:
        seed: the assembled seed (pre-iteration state).
        material: initial training material (None on a slimmed result —
            see :meth:`slim`).
        seed_triples: triples known before any bootstrap cycle (table
            statements plus seed-tagged text), i.e. "iteration 0".
        iterations: one record per cycle, in order.
        attributes: canonical attribute names the run tagged.
        quarantine: the ingest gate's containment ledger (None when
            the gate was disabled).
        halted_reason: why the iteration-health circuit breaker
            stopped the run early (``"rejection_rate"`` or
            ``"yield_collapse"``), or None for a run that completed.
        halted_at_iteration: 1-based cycle the breaker tripped on; the
            run's output is the *previous* (last healthy) cycle's.
    """

    seed: Seed
    material: TrainingMaterial | None
    seed_triples: frozenset[Triple]
    iterations: tuple[IterationResult, ...]
    attributes: tuple[str, ...]
    quarantine: Quarantine | None = None
    halted_reason: str | None = None
    halted_at_iteration: int | None = None

    def slim(self) -> "BootstrapResult":
        """A copy without the training material.

        The material — every labelled sentence plus the tokenized
        unlabeled corpus — dwarfs the rest of the result; sweeps that
        only read triples and metrics should not pay to pickle it
        across a process boundary.
        """
        from dataclasses import replace

        return replace(self, material=None)

    @property
    def final_triples(self) -> frozenset[Triple]:
        """System output after the last cycle."""
        if not self.iterations:
            return self.seed_triples
        return self.iterations[-1].triples

    def triples_after(self, iteration: int) -> frozenset[Triple]:
        """Cumulative triples after ``iteration`` cycles (0 = seed)."""
        if iteration <= 0:
            return self.seed_triples
        if iteration > len(self.iterations):
            raise IndexError(
                f"run has {len(self.iterations)} iterations, "
                f"asked for {iteration}"
            )
        return self.iterations[iteration - 1].triples

    def covered_products(self, iteration: int | None = None) -> set[str]:
        """Products with at least one triple at the given point."""
        triples = (
            self.final_triples
            if iteration is None
            else self.triples_after(iteration)
        )
        return {triple.product_id for triple in triples}


def confidence_filtered_tag(
    model,
    unlabeled_sentences: Sequence[Sentence],
    threshold: float,
) -> tuple[list[TaggedSentence], list[Extraction]]:
    """Tag with posterior confidences, dropping low-scoring spans.

    Per-sentence independent (the model's confidence is a pure function
    of one sentence), so the sharded tag workers
    (:mod:`repro.core.sharded`) run it per shard and concatenation
    reproduces the monolithic output exactly.
    """
    tagged_out: list[TaggedSentence] = []
    extractions: list[Extraction] = []
    for tagged, confidences in model.tag_with_confidence(
        unlabeled_sentences
    ):
        sentence_extractions = extractions_from_tagged([tagged])
        kept = [
            extraction
            for extraction, confidence in zip(
                sentence_extractions, confidences
            )
            if confidence >= threshold
        ]
        if len(kept) != len(sentence_extractions):
            (tagged,) = rebuild_tagged(
                [tagged], kept, drop_unlabelled=False
            )
        tagged_out.append(tagged)
        extractions.extend(kept)
    return tagged_out, extractions


def restrict_to_attributes(
    tagged: Sequence[TaggedSentence], allowed: frozenset[str]
) -> list[TaggedSentence]:
    """Blank labels of attributes outside ``allowed`` (specialized models)."""
    restricted: list[TaggedSentence] = []
    for sentence in tagged:
        labels = tuple(
            label
            if label == "O" or label.partition("-")[2] in allowed
            else "O"
            for label in sentence.labels
        )
        restricted.append(sentence.with_labels(labels))
    return restricted


class Bootstrapper:
    """Runs the full algorithm of Figure 1 over one category.

    Args:
        config: pipeline configuration (tagger backend, cleaning
            switches, iteration count).
        attribute_subset: restrict the run to these canonical attribute
            names — the "specialized models" of Section VIII-D. None
            trains the single global model.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        attribute_subset: Sequence[str] | None = None,
    ):
        self.config = config or PipelineConfig()
        self.attribute_subset = (
            frozenset(attribute_subset)
            if attribute_subset is not None
            else None
        )
        # Flipped when checkpoint writes hit a classified environment
        # failure (disk full, I/O error) past the retry budget: the
        # run completes checkpoint-less instead of crashing.
        self._checkpoint_disabled = False
        self._checkpoint_warning: str | None = None

    def run(
        self,
        pages: Sequence[ProductPage],
        query_log: QueryLogLike,
        trace: PipelineTrace | None = None,
        *,
        checkpoint: "CheckpointStore | None" = None,
        resume: bool = True,
        faults: "FaultPlan | None" = None,
    ) -> BootstrapResult:
        """Execute seed construction plus N bootstrap cycles.

        The method is stateless: every intermediate artifact lives in
        locals or flows through return values, so one ``Bootstrapper``
        can serve sequential or concurrent runs without leakage.

        Args:
            pages: the category's product pages.
            query_log: search-log membership filter.
            trace: optional per-stage timing sink; a throwaway trace is
                used when None so the instrumented path is the only
                path.
            checkpoint: optional snapshot store; every completed
                iteration is written to it, and (with ``resume=True``)
                a run whose directory already holds snapshots continues
                from the last completed iteration instead of redoing
                them. The seed phase is recomputed — it is deterministic
                — and verified against the stored digest.
            resume: with ``checkpoint``, False discards any existing
                snapshots and starts over.
            faults: optional fault-injection plan; its hooks fire at
                the top of every stage body.
        """
        trace = trace if trace is not None else PipelineTrace()
        pages = list(pages)
        if faults is not None:
            pages = self._apply_page_faults(pages, faults, trace)
        ingest_result: IngestResult | None = None
        # The gate parses every admitted page while validating it;
        # keeping those DOM roots lets tokenization and candidate
        # discovery skip their own parse passes (single-pass prep —
        # output-identical, the root is the tree of the kept html).
        roots = None
        if self.config.ingest.enabled:
            ingest_result = self._stage(
                trace, faults, "ingest", None,
                lambda stage: self._ingest(stage, pages, trace),
            )
            pages = ingest_result.pages
            roots = ingest_result.roots
            # Detach the trees from the (long-lived) result so they
            # can be freed once discovery is done.
            object.__setattr__(ingest_result, "roots", None)
        page_texts = self._stage(
            trace, faults, "tokenize", None,
            lambda stage: self._tokenize(stage, pages, roots),
        )
        candidates = self._stage(
            trace, faults, "candidate_discovery", None,
            lambda stage: self._discover(stage, pages, roots),
        )
        roots = None  # free the trees before the long training phase
        seed = self._stage(
            trace, faults, "seed_build", None,
            lambda stage: self._build_seed(stage, pages, query_log,
                                           candidates),
        )
        material = self._stage(
            trace, faults, "training_material", None,
            lambda stage: self._build_material(stage, page_texts, seed,
                                               candidates),
        )

        attributes = seed.attributes
        seed_triples = frozenset(seed.table_triples | material.text_triples)
        corpus = corpus_token_sentences(page_texts)
        unlabeled_sentences = [
            sentence
            for page_text in material.unlabeled_pages
            for sentence in page_text.sentences
        ]

        seed_labeled = self._seed_labeled(material.labeled)
        dataset: list[TaggedSentence] = list(seed_labeled)
        cumulative: set[Triple] = set(seed_triples)
        iterations: list[IterationResult] = []
        # Per-run performance state, kept in locals for re-entrancy:
        # the feature cache makes iterations 2+ reuse iteration 1's
        # extraction work, and `warm_models` carries the previous
        # iteration's word2vec model when warm starts are enabled.
        feature_cache: FeatureCache | bool | None = None
        if self.config.tagger in ("crf", "ensemble"):
            # False (not None) when disabled: the tagger then runs the
            # reference string-feature path with no private cache
            # either, so enable_feature_cache=False really measures an
            # uncached run (see perf/bench.py).
            feature_cache = (
                FeatureCache(window=self.config.crf.window)
                if self.config.enable_feature_cache
                else False
            )
        warm_models: list["Word2Vec | None"] = [None]
        start_iteration = 1
        if checkpoint is not None:
            from ..errors import StorageError

            restored = None
            try:
                restored = self._open_checkpoint(
                    checkpoint, resume, pages, seed_triples, attributes
                )
            except StorageError as error:
                self._disable_checkpoint(trace, error)
            if restored is not None:
                iterations = list(restored.results)
                dataset = restored.dataset
                cumulative = set(iterations[-1].triples)
                start_iteration = len(iterations) + 1
                trace.count(
                    "checkpoint_resume",
                    iterations=restored.completed_iterations,
                )
            if ingest_result is not None and not self._checkpoint_disabled:
                # The gate is deterministic, so a resumed run must
                # reproduce the stored ledger bit-for-bit; divergence
                # raises instead of splicing two different corpora.
                try:
                    checkpoint.record_quarantine(
                        ingest_result.quarantine.to_payload()
                    )
                except StorageError as error:
                    self._disable_checkpoint(trace, error)
        halted_reason: str | None = None
        halted_at: int | None = None
        for iteration in range(start_iteration, self.config.iterations + 1):
            result, artifacts = self._iterate(
                iteration,
                dataset,
                unlabeled_sentences,
                corpus,
                cumulative,
                trace,
                faults,
                feature_cache=feature_cache,
                warm_models=warm_models,
            )
            # Iteration-health circuit breaker: a collapsed yield or an
            # exploding cleaning-rejection rate means the model is
            # drifting into garbage; halt *before* folding this cycle
            # in, so the run's output is the last healthy iteration's.
            halted_reason = self._health_trip(result, artifacts, iterations)
            if halted_reason is not None:
                halted_at = iteration
                trace.count(
                    "circuit_breaker", iteration, **{halted_reason: 1}
                )
                break
            iterations.append(result)
            dataset = self._stage(
                trace, faults, "fold_dataset", iteration,
                lambda stage: self._fold(stage, seed_labeled, artifacts),
            )
            if checkpoint is not None:
                self._stage(
                    trace, faults, "checkpoint_write", iteration,
                    lambda stage: self._snapshot(
                        stage, checkpoint, result, dataset
                    ),
                )
        if isinstance(feature_cache, FeatureCache):
            trace.count(
                "feature_cache",
                hits=feature_cache.hits,
                misses=feature_cache.misses,
            )
        self._record_peak_rss(trace)
        return BootstrapResult(
            seed=seed,
            material=material,
            seed_triples=seed_triples,
            iterations=tuple(iterations),
            attributes=attributes,
            quarantine=(
                ingest_result.quarantine
                if ingest_result is not None
                else None
            ),
            halted_reason=halted_reason,
            halted_at_iteration=halted_at,
        )

    # -- resilience machinery ------------------------------------------------

    def _stage(
        self,
        trace: PipelineTrace,
        faults: "FaultPlan | None",
        name: str,
        iteration: int | None,
        body: Callable,
    ):
        """Run one traced stage body with fault hooks and retries.

        The fault hook fires inside the stage timing context, so
        injected failures show up in the trace like real ones. Stage
        bodies are pure functions of their inputs; a retry therefore
        reproduces exactly what an untroubled first attempt would have
        produced. Failures beyond ``config.stage_retries`` propagate.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                with trace.stage(name, iteration) as stage:
                    if faults is not None:
                        faults.fire(name, iteration)
                    return body(stage)
            except Exception as error:  # noqa: BLE001 - retried or re-raised
                if isinstance(error, FaultInjectionError):
                    trace.count("fault_injected", iteration, **{name: 1})
                if attempt > self.config.stage_retries:
                    raise
                trace.count("stage_retry", iteration, **{name: 1})

    def _optional_stage(
        self,
        trace: PipelineTrace,
        faults: "FaultPlan | None",
        name: str,
        iteration: int | None,
        body: Callable,
    ):
        """A stage whose exhausted failure degrades to a counted skip.

        Used for the cleaning stages: they refine output but a run
        without them is still a valid (if noisier) run — "degrade,
        don't crash". Returns None when the stage was skipped.
        """
        try:
            return self._stage(trace, faults, name, iteration, body)
        except Exception:  # noqa: BLE001 - deliberate degradation
            trace.count("stage_skip", iteration, **{name: 1})
            return None

    def _apply_page_faults(
        self,
        pages: list[ProductPage],
        faults: "FaultPlan",
        trace: PipelineTrace,
    ) -> list[ProductPage]:
        corrupted_pages = faults.corrupt_pages(pages)
        corrupted = sum(
            1
            for before, after in zip(pages, corrupted_pages)
            if before.html != after.html
        )
        # "dirt" faults can *grow* the corpus (duplicate-id injection);
        # appended pages are corruption too, beyond what zip() sees.
        corrupted += max(len(corrupted_pages) - len(pages), 0)
        if corrupted:
            trace.count("pages_corrupted", pages=corrupted)
        return corrupted_pages

    def _health_trip(
        self,
        result: IterationResult,
        artifacts: _IterationArtifacts,
        previous: list[IterationResult],
    ) -> str | None:
        """Decide whether this cycle trips the health circuit breaker.

        A pure function of the cycle's observables and the previous
        records, so a checkpoint-resumed run re-derives the identical
        verdict. Two trip conditions (:class:`~repro.config.
        HealthConfig`):

        * ``"rejection_rate"`` — the cleaning stages rejected more than
          ``max_rejection_rate`` of a meaningful candidate sample: the
          tagger is emitting garbage faster than cleaning can absorb.
        * ``"yield_collapse"`` — candidate yield fell below
          ``yield_collapse_ratio`` of the previous cycle's meaningful
          sample: the model has collapsed.
        """
        health = self.config.health
        if not health.enable_circuit_breaker:
            return None
        candidates = result.candidate_extractions
        kept = len(artifacts.kept_extractions)
        if candidates >= health.min_rejection_sample:
            rejection = 1.0 - kept / candidates
            if rejection > health.max_rejection_rate:
                return "rejection_rate"
        if previous:
            prior = previous[-1].candidate_extractions
            if (
                prior >= health.min_yield_sample
                and candidates < prior * health.yield_collapse_ratio
            ):
                return "yield_collapse"
        return None

    def _open_checkpoint(
        self,
        checkpoint: "CheckpointStore",
        resume: bool,
        pages: list[ProductPage],
        seed_triples: frozenset[Triple],
        attributes: tuple[str, ...],
    ):
        """Validate/create the store; return restore state or None."""
        from ..runtime.checkpoint import run_fingerprint, seed_digest

        fingerprint = run_fingerprint(
            pages, self.config, self.attribute_subset
        )
        digest = seed_digest(seed_triples, attributes)
        if resume and checkpoint.has_run():
            checkpoint.validate(fingerprint, digest)
            return checkpoint.load_resume_state()
        checkpoint.begin(fingerprint, digest, self.config.iterations)
        return None

    # -- stage bodies --------------------------------------------------------

    def _ingest(
        self, stage, pages: list[ProductPage], trace: PipelineTrace
    ) -> IngestResult:
        gate = IngestGate(self.config.ingest)
        result = gate.process(pages, keep_roots=True)
        counts = result.quarantine.counts_by_check()
        if counts:
            trace.count("quarantine", **counts)
        if result.repaired:
            trace.count("ingest_repair", **result.repaired)
        stage.add(
            pages_in=result.pages_in,
            pages_kept=len(result.pages),
            quarantined=len(result.quarantine),
            repaired=result.repaired_total,
        )
        return result

    def _tokenize(
        self, stage, pages: list[ProductPage], roots=None
    ) -> list[PageText]:
        page_texts = tokenize_pages(pages, roots)
        stage.add(pages=len(pages))
        return page_texts

    def _discover(self, stage, pages: list[ProductPage], roots=None):
        candidates = discover_candidates(pages, roots)
        stage.add(candidates=len(candidates))
        return candidates

    def _build_seed(
        self, stage, pages: list[ProductPage], query_log, candidates
    ) -> Seed:
        seed = build_seed(
            pages,
            query_log,
            self.config.seed_config,
            enable_diversification=self.config.enable_diversification,
            candidates=candidates,
        )
        seed = self._restrict_seed(seed)
        stage.add(
            attributes=len(seed.attributes),
            seed_pairs=len(seed.pairs()),
        )
        return seed

    def _build_material(
        self, stage, page_texts, seed: Seed, candidates
    ) -> TrainingMaterial:
        material = build_training_material(page_texts, seed, candidates)
        stage.add(
            labeled_sentences=len(material.labeled),
            unlabeled_pages=len(material.unlabeled_pages),
        )
        return material

    def _fold(
        self, stage, seed_labeled: Sequence[TaggedSentence],
        artifacts: _IterationArtifacts,
    ) -> list[TaggedSentence]:
        dataset = self._next_dataset(seed_labeled, artifacts)
        stage.add(dataset_sentences=len(dataset))
        return dataset

    #: Attempts a snapshot write gets before checkpointing is disabled
    #: for the rest of the run.
    _SNAPSHOT_ATTEMPTS = 3

    def _snapshot(self, stage, checkpoint, result, dataset) -> None:
        """Write one iteration snapshot; degrade on storage failure.

        Classified environment failures (:class:`~repro.errors.
        StorageError`: disk full, I/O error) are retried with the
        deterministic job backoff; past the budget the run drops to
        checkpoint-less with a counted ``checkpoint_disabled`` warning
        — losing resumability must never lose the run itself.
        """
        if self._checkpoint_disabled:
            stage.add(skipped=1)
            return
        import time as _time

        from ..errors import StorageError
        from ..runtime.jobs import retry_backoff

        attempt = 0
        while True:
            attempt += 1
            try:
                checkpoint.write_iteration(result, dataset)
                stage.add(iterations=1)
                return
            except StorageError as error:
                if attempt < self._SNAPSHOT_ATTEMPTS:
                    _time.sleep(retry_backoff("checkpoint_write", attempt))
                    continue
                self._checkpoint_disabled = True
                self._checkpoint_warning = str(error)
                stage.add(checkpoint_disabled=1, write_failures=attempt)
                return

    def _disable_checkpoint(self, trace: PipelineTrace, error) -> None:
        """Degrade to checkpoint-less after a storage failure."""
        self._checkpoint_disabled = True
        self._checkpoint_warning = str(error)
        trace.count("checkpoint_disabled", failures=1)

    # -- internals -----------------------------------------------------------

    def _restrict_seed(self, seed: Seed) -> Seed:
        if self.attribute_subset is None:
            return seed
        values = {
            attribute: counter
            for attribute, counter in seed.values.items()
            if attribute in self.attribute_subset
        }
        table_triples = frozenset(
            triple
            for triple in seed.table_triples
            if triple.attribute in self.attribute_subset
        )
        # Clusters must shrink with the subset too: a specialized model
        # (Section VIII-D) told to exclude an attribute must not keep
        # that attribute's value clusters or surface-name aliases.
        canonical = {
            surface: name
            for surface, name in seed.clusters.canonical.items()
            if name in self.attribute_subset
        }
        clusters = AttributeClusters(
            canonical=canonical,
            page_support={
                surface: count
                for surface, count in seed.clusters.page_support.items()
                if surface in canonical
            },
        )
        return Seed(
            values=values,
            clusters=clusters,
            table_triples=table_triples,
            raw_candidate_count=seed.raw_candidate_count,
            cleaned_value_count=seed.cleaned_value_count,
        )

    def _iterate(
        self,
        iteration: int,
        dataset: list[TaggedSentence],
        unlabeled_sentences: list[Sentence],
        corpus: list[list[str]],
        cumulative: set[Triple],
        trace: PipelineTrace,
        faults: "FaultPlan | None" = None,
        feature_cache: FeatureCache | bool | None = None,
        warm_models: list["Word2Vec | None"] | None = None,
    ) -> tuple[IterationResult, _IterationArtifacts]:
        if not dataset:
            raise TrainingError(
                "seed produced no labelled sentences; the category has "
                "no usable dictionary tables"
            )
        model = self._stage(
            trace, faults, "tagger_train", iteration,
            lambda stage: self._train(
                stage, iteration, dataset, feature_cache
            ),
        )
        self._count_trainer_warnings(model, iteration, trace)
        tagged, extractions = self._stage(
            trace, faults, "tagger_tag", iteration,
            lambda stage: self._tag(stage, model, unlabeled_sentences),
        )
        return self._finish_iteration(
            iteration,
            dataset,
            tagged,
            extractions,
            corpus,
            cumulative,
            trace,
            faults,
            warm_models=warm_models,
        )

    def _count_trainer_warnings(
        self, model, iteration: int, trace: PipelineTrace
    ) -> None:
        # Non-fatal trainer warnings (e.g. an L-BFGS line-search abort
        # degraded to best-so-far weights) become counters so a run
        # that limped through training is auditable via
        # resilience_counters().
        warnings = getattr(model, "training_diagnostics", None)
        if warnings:
            trace.count("trainer_warning", iteration, **warnings)

    def _finish_iteration(
        self,
        iteration: int,
        dataset: list[TaggedSentence],
        tagged: list[TaggedSentence],
        extractions: list[Extraction],
        corpus: list[list[str]],
        cumulative: set[Triple],
        trace: PipelineTrace,
        faults: "FaultPlan | None" = None,
        warm_models: list["Word2Vec | None"] | None = None,
    ) -> tuple[IterationResult, _IterationArtifacts]:
        """Everything after tagging: cleaning, accumulation, records.

        Shared by the monolithic path and the sharded one
        (:mod:`repro.core.sharded`), which reaches this point with
        ``tagged`` merged from shard workers — identical inputs here
        guarantee identical iteration output.
        """
        candidate_count = len(extractions)

        veto_stats: VetoStats | None = None
        if self.config.enable_syntactic_cleaning:
            vetoed = self._optional_stage(
                trace, faults, "veto", iteration,
                lambda stage: self._veto(
                    stage, extractions, candidate_count
                ),
            )
            if vetoed is not None:
                extractions, veto_stats = vetoed

        semantic_stats: SemanticStats | None = None
        if self.config.enable_semantic_cleaning and extractions:
            cleaned = self._optional_stage(
                trace, faults, "semantic_clean", iteration,
                lambda stage: self._semantic_clean(
                    stage, iteration, extractions, corpus, warm_models
                ),
            )
            if cleaned is not None:
                extractions, semantic_stats = cleaned

        new_triples = frozenset(
            extraction.triple for extraction in extractions
        ) - frozenset(cumulative)
        cumulative.update(extraction.triple for extraction in extractions)
        result = IterationResult(
            iteration=iteration,
            triples=frozenset(cumulative),
            new_triples=new_triples,
            candidate_extractions=candidate_count,
            veto_stats=veto_stats,
            semantic_stats=semantic_stats,
            dataset_sentences=len(dataset),
        )
        artifacts = _IterationArtifacts(
            kept_extractions=extractions, tagged=tagged
        )
        return result, artifacts

    def _train(
        self,
        stage,
        iteration: int,
        dataset: list[TaggedSentence],
        feature_cache: FeatureCache | bool | None = None,
    ):
        # The model is built inside the stage body so a retried stage
        # trains a fresh, identically-seeded tagger. The shared feature
        # cache holds only extracted feature strings (pure functions of
        # the sentences), so reuse across retries and iterations cannot
        # alter what a fresh model learns.
        model = make_tagger(self.config, iteration, feature_cache)
        model.train(dataset)
        stage.add(sentences=len(dataset))
        return model

    def _tag(
        self, stage, model, unlabeled_sentences: list[Sentence]
    ) -> tuple[list[TaggedSentence], list[Extraction]]:
        if (
            self.config.min_confidence > 0.0
            and hasattr(model, "tag_with_confidence")
        ):
            tagged, extractions = self._tag_with_confidence_filter(
                model, unlabeled_sentences
            )
        else:
            tagged = model.tag(unlabeled_sentences)
            extractions = extractions_from_tagged(tagged)
        stage.add(
            sentences=len(unlabeled_sentences),
            extractions=len(extractions),
        )
        return tagged, extractions

    def _veto(
        self, stage, extractions: list[Extraction], candidate_count: int
    ) -> tuple[list[Extraction], VetoStats]:
        kept, veto_stats = apply_veto(extractions, self.config.veto)
        stage.add(kept=len(kept), removed=candidate_count - len(kept))
        return kept, veto_stats

    def _semantic_clean(
        self,
        stage,
        iteration: int,
        extractions: list[Extraction],
        corpus: list[list[str]],
        warm_models: list["Word2Vec | None"] | None = None,
    ) -> tuple[list[Extraction], SemanticStats]:
        cleaner = SemanticCleaner(
            self.config.semantic,
            seed=self.config.seed + iteration,
        )
        donor = (
            warm_models[0]
            if warm_models is not None
            and self.config.semantic.warm_start_embeddings
            else None
        )
        kept, semantic_stats = cleaner.clean(
            extractions, corpus, warm_start_from=donor
        )
        if (
            warm_models is not None
            and self.config.semantic.warm_start_embeddings
            and cleaner.last_model is not None
        ):
            warm_models[0] = cleaner.last_model
        stage.add(kept=len(kept), removed=semantic_stats.values_removed)
        return kept, semantic_stats

    def _tag_with_confidence_filter(
        self,
        model,
        unlabeled_sentences: list[Sentence],
    ) -> tuple[list[TaggedSentence], list[Extraction]]:
        """Tag with posterior confidences, dropping low-scoring spans.

        The confidence-filter extension: spans whose posterior span
        confidence is below ``config.min_confidence`` never become
        candidates (so they also never reach the training set).
        """
        return confidence_filtered_tag(
            model, unlabeled_sentences, self.config.min_confidence
        )

    def _next_dataset(
        self,
        seed_labeled: Sequence[TaggedSentence],
        artifacts: _IterationArtifacts,
    ) -> list[TaggedSentence]:
        """Seed-labelled sentences plus this cycle's cleaned evidence."""
        cleaned = rebuild_tagged(
            artifacts.tagged, artifacts.kept_extractions
        )
        return list(seed_labeled) + cleaned

    def _seed_labeled(
        self, labeled: Sequence[TaggedSentence]
    ) -> list[TaggedSentence]:
        """The seed-labelled dataset slice, bounded by configuration.

        ``config.max_labeled_sentences`` keeps the first N sentences in
        corpus order — a deterministic prefix, so the monolithic and
        sharded paths (which both build ``labeled`` in global page
        order) cap to the identical dataset.
        """
        cap = self.config.max_labeled_sentences
        if cap is None or len(labeled) <= cap:
            return list(labeled)
        return list(labeled[:cap])

    def _record_peak_rss(self, trace: PipelineTrace) -> None:
        """Record the run-wide peak RSS (self + reaped workers)."""
        from ..runtime.memory import run_peak_rss_bytes

        peak = run_peak_rss_bytes()
        if peak:
            trace.count("peak_rss", bytes=peak)
