"""Attribute aggregation: merging redundant attribute names.

Different merchants name the same attribute differently (製造元
"manufacturer" vs メーカー "maker"); Section V-A aggregates them with
the scoring function of Charron et al. [4]: a naive confidence that two
attributes are the same "if they share many values respective to their
maximum number of values, adjusted by a decreasing function which
reduces that confidence if the attributes have comparable range sizes".

Reconstruction used here (the cited paper gives no closed formula):

    overlap(a, b) = |V(a) ∩ V(b)| / min(|V(a)|, |V(b)|)
    ratio(a, b)   = min(|V(a)|, |V(b)|) / max(|V(a)|, |V(b)|)
    score(a, b)   = overlap · (1 − damping · ratio)

``overlap`` is containment — an alias's (smaller) value set should sit
inside the canonical attribute's; the ``(1 − damping · ratio)`` factor
is the comparable-range-size penalty: two fully-fledged attributes with
similar range sizes sharing values (length vs width) are likely distinct
attributes, while a rare alias (tiny range vs large) keeps its
confidence. Names scoring at or above the threshold merge transitively
(union-find); a cluster's canonical name is its best-supported member.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from ...config import SeedConfig
from .candidate_discovery import RawCandidate


@dataclass(frozen=True)
class AttributeClusters:
    """Result of aggregation: surface name → canonical cluster name."""

    canonical: dict[str, str]
    page_support: dict[str, int]

    def resolve(self, surface: str) -> str | None:
        """Canonical name for a surface name; None for dropped names."""
        return self.canonical.get(surface)

    def cluster_names(self) -> tuple[str, ...]:
        """Distinct canonical names, sorted."""
        return tuple(sorted(set(self.canonical.values())))

    def members(self, canonical_name: str) -> tuple[str, ...]:
        """All surface names mapping to ``canonical_name``."""
        return tuple(
            sorted(
                surface
                for surface, name in self.canonical.items()
                if name == canonical_name
            )
        )


class _UnionFind:
    def __init__(self, items: Sequence[str]):
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: str, second: str) -> None:
        self._parent[self.find(first)] = self.find(second)


def charron_score(
    values_a: frozenset[str] | set[str],
    values_b: frozenset[str] | set[str],
    damping: float,
) -> float:
    """The reconstructed Charron et al. similarity score (module doc)."""
    if not values_a or not values_b:
        return 0.0
    smaller, larger = sorted((len(values_a), len(values_b)))
    overlap = len(values_a & values_b) / smaller
    ratio = smaller / larger
    return overlap * (1.0 - damping * ratio)


def aggregate_attributes(
    candidates: Sequence[RawCandidate],
    config: SeedConfig | None = None,
) -> AttributeClusters:
    """Cluster redundant attribute names.

    Names supported by fewer than ``config.min_attribute_pages`` pages
    are dropped entirely (boilerplate junk rows rarely recur).
    """
    config = config or SeedConfig()
    values: dict[str, set[str]] = defaultdict(set)
    support: Counter[str] = Counter()
    for candidate in candidates:
        values[candidate.attribute].add(candidate.value_key)
        support[candidate.attribute] += 1
    names = [
        name
        for name in sorted(values)
        if support[name] >= config.min_attribute_pages
    ]
    union_find = _UnionFind(names)
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            score = charron_score(
                values[first], values[second], config.aggregation_damping
            )
            if score >= config.aggregation_threshold:
                union_find.union(first, second)

    clusters: dict[str, list[str]] = defaultdict(list)
    for name in names:
        clusters[union_find.find(name)].append(name)

    canonical: dict[str, str] = {}
    for members in clusters.values():
        representative = max(members, key=lambda name: (support[name], name))
        for member in members:
            canonical[member] = representative
    return AttributeClusters(
        canonical=canonical, page_support=dict(support)
    )
