"""Seed assembly: lines 1-4 of Figure 1 chained into one call.

The :class:`Seed` is the pipeline's "concise and clean set of tuples
that provides an initial abstract representation of the category":
canonical attribute names, surviving values with their support, and the
per-page table statements used both for initial tagging and as output
triples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ...config import SeedConfig
from ...types import AttributeValuePair, ProductPage, Triple
from .aggregation import AttributeClusters, aggregate_attributes
from .candidate_discovery import RawCandidate, discover_candidates
from .diversification import diversify_values
from .value_cleaning import QueryLogLike, clean_values


@dataclass(frozen=True)
class Seed:
    """The cleaned, diversified initial seed.

    Attributes:
        values: canonical attribute → value_key → page support.
        clusters: attribute-name aggregation result.
        table_triples: per-page table statements restricted to seed
            attributes and values (the pipeline's iteration-0 output).
        raw_candidate_count: size of the raw candidate pool (stats).
        cleaned_value_count: distinct values surviving cleaning, before
            diversification (stats for the ablation benches).
    """

    values: dict[str, Counter]
    clusters: AttributeClusters
    table_triples: frozenset[Triple]
    raw_candidate_count: int = 0
    cleaned_value_count: int = 0

    @property
    def attributes(self) -> tuple[str, ...]:
        """Canonical attribute names, sorted."""
        return tuple(sorted(self.values))

    def pairs(self) -> frozenset[AttributeValuePair]:
        """All distinct ``<attribute, value>`` pairs in the seed."""
        return frozenset(
            AttributeValuePair(attribute, value_key)
            for attribute, counter in self.values.items()
            for value_key in counter
        )

    def value_keys(self, attribute: str) -> frozenset[str]:
        """Distinct value keys of one attribute (empty if unknown)."""
        return frozenset(self.values.get(attribute, ()))

    def __contains__(self, pair: AttributeValuePair) -> bool:
        return pair.value in self.values.get(pair.attribute, ())


def build_seed(
    pages: Sequence[ProductPage],
    query_log: QueryLogLike,
    config: SeedConfig | None = None,
    *,
    enable_diversification: bool = True,
    candidates: Sequence[RawCandidate] | None = None,
) -> Seed:
    """Run candidate discovery → aggregation → cleaning → diversification.

    Args:
        pages: the category's product pages.
        query_log: search-log membership filter.
        config: seed-stage thresholds.
        enable_diversification: the ``-div`` ablation knob (Table IV).
        candidates: pre-discovered raw candidates, to avoid re-parsing
            pages when the caller already ran discovery.

    Returns:
        The assembled :class:`Seed`.
    """
    config = config or SeedConfig()
    if candidates is None:
        candidates = discover_candidates(pages)
    clusters = aggregate_attributes(candidates, config)
    cleaned = clean_values(candidates, clusters, query_log, config)
    cleaned_value_count = sum(len(counter) for counter in cleaned.values())
    if enable_diversification and pages:
        complete = diversify_values(
            cleaned, candidates, clusters, pages[0].locale, config
        )
    else:
        complete = cleaned
    table_triples = _table_triples(candidates, clusters, complete)
    return Seed(
        values=complete,
        clusters=clusters,
        table_triples=table_triples,
        raw_candidate_count=len(candidates),
        cleaned_value_count=cleaned_value_count,
    )


def _table_triples(
    candidates: Sequence[RawCandidate],
    clusters: AttributeClusters,
    seed_values: dict[str, Counter],
) -> frozenset[Triple]:
    """Project the raw table rows through the cleaned seed."""
    triples: set[Triple] = set()
    for candidate in candidates:
        canonical = clusters.resolve(candidate.attribute)
        if canonical is None:
            continue
        if candidate.value_key in seed_values.get(canonical, ()):
            triples.add(
                Triple(candidate.product_id, canonical, candidate.value_key)
            )
    return frozenset(triples)
