"""Training-set generation (line 5 of Figure 1).

The seed tags "an initial set of products (the few ones with dictionary
tables)": every sentence of a table-bearing page is scanned for seed
values; hits become BIO spans. Pages without tables form the unlabeled
pool the bootstrap tagger will expand into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...nlp.bio import encode_bio
from ...types import TaggedSentence, Triple
from ..text import PageText
from .candidate_discovery import RawCandidate
from .matcher import ValueMatcher
from .seed import Seed


@dataclass(frozen=True)
class TrainingMaterial:
    """The initial labelled dataset plus the unlabeled pool.

    Attributes:
        labeled_pages: tokenized table-bearing pages.
        labeled: their sentences with seed-derived BIO labels (all-O
            sentences included — negative evidence matters).
        unlabeled_pages: tokenized pages without dictionary tables.
        text_triples: triples implied by the labelled spans.
    """

    labeled_pages: tuple[PageText, ...]
    labeled: tuple[TaggedSentence, ...]
    unlabeled_pages: tuple[PageText, ...]
    text_triples: frozenset[Triple]


def page_table_preferences(
    candidates: Sequence[RawCandidate],
    seed: Seed,
) -> dict[str, dict[str, str]]:
    """Per-page value→attribute evidence from the page's own table."""
    preferences: dict[str, dict[str, str]] = {}
    for candidate in candidates:
        canonical = seed.clusters.resolve(candidate.attribute)
        if canonical is None:
            continue
        if candidate.value_key in seed.values.get(canonical, ()):
            preferences.setdefault(candidate.product_id, {})[
                candidate.value_key
            ] = canonical
    return preferences


def seed_matcher(seed: Seed) -> ValueMatcher:
    """The deterministic seed-value matcher used for initial tagging."""
    return ValueMatcher(
        {
            attribute: sorted(counter)
            for attribute, counter in seed.values.items()
        }
    )


def label_page(
    page_text: PageText,
    matcher: ValueMatcher,
    prefer: dict[str, str],
) -> tuple[list[TaggedSentence], set[Triple]]:
    """Seed-tag one table-bearing page's sentences.

    The per-page unit of :func:`build_training_material`, factored out
    so the sharded bootstrap can label shard-resident pages without
    holding the whole corpus (:mod:`repro.core.sharded`). Deterministic
    per page, so page order alone fixes the global labelled dataset.
    """
    labeled: list[TaggedSentence] = []
    text_triples: set[Triple] = set()
    for sentence in page_text.sentences:
        spans = matcher.find_spans(sentence.texts(), prefer)
        labels = encode_bio(len(sentence), spans)
        labeled.append(TaggedSentence(sentence, tuple(labels)))
        for start, end, attribute in spans:
            value_key = " ".join(sentence.texts()[start:end])
            text_triples.add(
                Triple(page_text.product_id, attribute, value_key)
            )
    return labeled, text_triples


def build_training_material(
    page_texts: Sequence[PageText],
    seed: Seed,
    candidates: Sequence[RawCandidate],
) -> TrainingMaterial:
    """Tag table-bearing pages with the seed.

    Args:
        page_texts: tokenized pages (all of them).
        seed: the assembled seed.
        candidates: raw table rows (identify table pages and provide
            page-local disambiguation evidence).
    """
    matcher = seed_matcher(seed)
    preferences = page_table_preferences(candidates, seed)
    table_page_ids = {candidate.product_id for candidate in candidates}

    labeled_pages: list[PageText] = []
    unlabeled_pages: list[PageText] = []
    labeled: list[TaggedSentence] = []
    text_triples: set[Triple] = set()
    for page_text in page_texts:
        if page_text.product_id not in table_page_ids:
            unlabeled_pages.append(page_text)
            continue
        labeled_pages.append(page_text)
        page_labeled, page_triples = label_page(
            page_text,
            matcher,
            preferences.get(page_text.product_id, {}),
        )
        labeled.extend(page_labeled)
        text_triples.update(page_triples)
    return TrainingMaterial(
        labeled_pages=tuple(labeled_pages),
        labeled=tuple(labeled),
        unlabeled_pages=tuple(unlabeled_pages),
        text_triples=frozenset(text_triples),
    )
