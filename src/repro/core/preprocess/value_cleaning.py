"""Seed value cleaning (Section V-A).

"Incorrect attribute values are removed by keeping only those values
that are found in search queries (from the search log input) or occur
very often in its web page." A value therefore survives when the query
log contains it, or when enough distinct pages state it in a table.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Protocol, Sequence

from ...config import SeedConfig
from .aggregation import AttributeClusters
from .candidate_discovery import RawCandidate


class QueryLogLike(Protocol):
    """The only query-log capability the pipeline needs: membership."""

    def contains(self, key: str) -> bool: ...


def clean_values(
    candidates: Sequence[RawCandidate],
    clusters: AttributeClusters,
    query_log: QueryLogLike,
    config: SeedConfig | None = None,
) -> dict[str, Counter]:
    """Filter candidate values into the cleaned seed.

    Args:
        candidates: raw table rows.
        clusters: aggregation result; rows whose attribute name was
            dropped are ignored.
        query_log: membership filter over canonical value keys.
        config: thresholds.

    Returns:
        canonical attribute name → Counter of value_key → page support,
        containing only surviving values.
    """
    config = config or SeedConfig()
    page_support: dict[str, Counter] = defaultdict(Counter)
    pages_seen: dict[tuple[str, str], set[str]] = defaultdict(set)
    for candidate in candidates:
        canonical = clusters.resolve(candidate.attribute)
        if canonical is None:
            continue
        pages_seen[(canonical, candidate.value_key)].add(
            candidate.product_id
        )
    for (canonical, value_key), pages in pages_seen.items():
        page_support[canonical][value_key] = len(pages)

    cleaned: dict[str, Counter] = {}
    for canonical, counter in page_support.items():
        kept = Counter()
        for value_key, support in counter.items():
            frequent = support >= config.min_value_page_frequency
            searched = query_log.contains(value_key)
            if frequent or searched:
                kept[value_key] = support
        if kept:
            cleaned[canonical] = kept
    return cleaned
