"""Token-level value matching for distant-supervision tagging.

Training-set generation "labels product web pages by ... tagging all
occurrences of *value* with *attribute*, where value may be a
multiword". The matcher scans a token sequence greedily left-to-right,
longest value first, and resolves each hit to an attribute:

1. if the page's own table stated the value for some attribute, that
   attribute wins (page-local evidence);
2. otherwise, a value belonging to exactly one seed attribute resolves
   to it;
3. ambiguous values (shared by several attributes, no local evidence)
   are skipped — wrong labels are costlier than missing ones.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence


class ValueMatcher:
    """Greedy longest-match scanner over token sequences.

    Args:
        attribute_values: canonical attribute → iterable of value keys
            (space-joined token strings).
    """

    def __init__(self, attribute_values: Mapping[str, Sequence[str]]):
        self._by_tokens: dict[tuple[str, ...], set[str]] = defaultdict(set)
        for attribute, value_keys in attribute_values.items():
            for value_key in value_keys:
                tokens = tuple(value_key.split(" "))
                if tokens:
                    self._by_tokens[tokens].add(attribute)
        self._max_len = max(
            (len(tokens) for tokens in self._by_tokens), default=0
        )

    def __len__(self) -> int:
        return len(self._by_tokens)

    def find_spans(
        self,
        tokens: Sequence[str],
        prefer: Mapping[str, str] | None = None,
    ) -> list[tuple[int, int, str]]:
        """Locate value occurrences and resolve their attributes.

        Args:
            tokens: sentence token texts.
            prefer: value_key → attribute mapping from page-local
                evidence (the page's own table rows).

        Returns:
            Non-overlapping ``(start, end, attribute)`` spans in
            left-to-right order.
        """
        prefer = prefer or {}
        spans: list[tuple[int, int, str]] = []
        position = 0
        length = len(tokens)
        while position < length:
            matched = False
            longest = min(self._max_len, length - position)
            for width in range(longest, 0, -1):
                window = tuple(tokens[position:position + width])
                attributes = self._by_tokens.get(window)
                if not attributes:
                    continue
                value_key = " ".join(window)
                attribute = self._resolve(value_key, attributes, prefer)
                if attribute is not None:
                    spans.append((position, position + width, attribute))
                    position += width
                    matched = True
                break  # only the longest hit at this position is tried
            if not matched:
                position += 1
        return spans

    @staticmethod
    def _resolve(
        value_key: str,
        attributes: set[str],
        prefer: Mapping[str, str],
    ) -> str | None:
        preferred = prefer.get(value_key)
        if preferred is not None and preferred in attributes:
            return preferred
        if len(attributes) == 1:
            return next(iter(attributes))
        return None
