"""Value diversification — one of the paper's named contributions.

Frequency/query filters keep popular values, which are biased toward
popular *shapes*: if integer weights dominate, no decimal weight
survives, the tagger never sees the decimal pattern, and it later
mangles ``2.5kg`` into ``5kg`` (Section VIII-A).

The fix (Section V-A): for each attribute take the k most frequent
PoS-tag *sequences* over the raw candidate values, and for each such
sequence adopt its n most frequent values back into the seed — thereby
"generalizing via diversification": every common shape is represented
even when its individual values are rare.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from ...config import SeedConfig
from ...nlp import get_locale
from .aggregation import AttributeClusters
from .candidate_discovery import RawCandidate


def pos_sequence(value_key: str, locale: str) -> tuple[str, ...]:
    """The PoS-tag sequence of a canonical value key."""
    tagger = get_locale(locale).pos_tagger
    return tuple(tagger.tag(value_key.split(" ")))


def diversify_values(
    cleaned: dict[str, Counter],
    candidates: Sequence[RawCandidate],
    clusters: AttributeClusters,
    locale: str,
    config: SeedConfig | None = None,
) -> dict[str, Counter]:
    """Augment the cleaned seed with shape-diverse values.

    Args:
        cleaned: output of :func:`~.value_cleaning.clean_values`.
        candidates: the *raw* candidates (pre-cleaning) — rare shapes
            only exist there.
        clusters: attribute aggregation result.
        locale: category locale (for PoS-tagging value tokens).
        config: ``diversification_k`` sequences × ``diversification_n``
            values each.

    Returns:
        A new mapping; the input is not mutated.
    """
    config = config or SeedConfig()
    if config.diversification_k == 0 or config.diversification_n == 0:
        return {name: Counter(counter) for name, counter in cleaned.items()}

    support: dict[str, Counter] = defaultdict(Counter)
    for candidate in candidates:
        canonical = clusters.resolve(candidate.attribute)
        if canonical is not None:
            support[canonical][candidate.value_key] += 1

    diversified = {
        name: Counter(counter) for name, counter in cleaned.items()
    }
    for canonical, value_support in support.items():
        if canonical not in diversified:
            continue
        by_shape: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        shape_mass: Counter = Counter()
        for value_key, count in value_support.items():
            shape = pos_sequence(value_key, locale)
            by_shape[shape][value_key] += count
            shape_mass[shape] += count
        top_shapes = [
            shape for shape, _ in shape_mass.most_common(
                config.diversification_k
            )
        ]
        target = diversified[canonical]
        for shape in top_shapes:
            for value_key, count in by_shape[shape].most_common(
                config.diversification_n
            ):
                if value_key not in target:
                    target[value_key] = count
    return diversified
