"""Candidate discovery: mine raw seed pairs from dictionary tables.

Implements line 2 of Figure 1 following the HTML-table mining lineage
the paper cites ([13], [24], [2], [5], [11], [4]): every dictionary-form
table (2×n or n×2) contributes its ``(name, value)`` cells as candidate
attribute-value pairs. Both sides are tokenized with the page locale so
downstream identity is format-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ...html import extract_dictionary_tables, parse_html
from ...html.dom import Element
from ...nlp import get_locale
from ...types import ProductPage


@dataclass(frozen=True, slots=True)
class RawCandidate:
    """One table row, normalized.

    Attributes:
        product_id: page the row came from.
        attribute: surface attribute name, whitespace-normalized.
        value_key: canonical (token-joined) value string.
    """

    product_id: str
    attribute: str
    value_key: str

    @property
    def value_tokens(self) -> tuple[str, ...]:
        return tuple(self.value_key.split(" "))


def discover_page_candidates(
    page: ProductPage, root: Element | None = None
) -> list[RawCandidate]:
    """Extract raw candidates from one page's dictionary tables.

    Args:
        page: the page to mine.
        root: an already-parsed DOM of ``page.html`` to reuse (the
            ingest gate and tokenizer parse the same document); parsed
            fresh when omitted. Output is identical either way.
    """
    nlp = get_locale(page.locale)
    if root is None:
        root = parse_html(page.html)
    candidates: list[RawCandidate] = []
    seen: set[tuple[str, str]] = set()
    for table in extract_dictionary_tables(root):
        for name, value in table.pairs:
            name_key = " ".join(nlp.tokenizer.tokenize(name))
            value_tokens = nlp.tokenizer.tokenize(value)
            if not name_key or not value_tokens:
                continue
            value_joined = " ".join(value_tokens)
            if (name_key, value_joined) in seen:
                continue
            seen.add((name_key, value_joined))
            candidates.append(
                RawCandidate(page.product_id, name_key, value_joined)
            )
    return candidates


def discover_candidates(
    pages: Iterable[ProductPage],
    roots: Sequence[Element] | None = None,
) -> list[RawCandidate]:
    """Extract raw candidates from every page's dictionary tables.

    Rows with an empty tokenized name or value are skipped; duplicate
    rows within one page are kept once. ``roots``, when given, must
    align 1:1 with ``pages`` (pre-parsed DOM trees to reuse).
    """
    if roots is None:
        return [
            candidate
            for page in pages
            for candidate in discover_page_candidates(page)
        ]
    return [
        candidate
        for page, root in zip(pages, roots)
        for candidate in discover_page_candidates(page, root)
    ]


def pages_with_tables(candidates: Sequence[RawCandidate]) -> set[str]:
    """Product ids that contributed at least one candidate row."""
    return {candidate.product_id for candidate in candidates}
