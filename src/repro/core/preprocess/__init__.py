"""Pre-processor (Section V-A, lines 1-5 of Figure 1).

Stages, in order:

1. :mod:`candidate_discovery` — mine raw ``<attribute, value>``
   candidates from dictionary-form HTML tables;
2. :mod:`aggregation` — merge redundant attribute names (merchant
   aliases) with the Charron-style scoring function;
3. :mod:`value_cleaning` — keep values found in the query log or
   frequent across pages;
4. :mod:`diversification` — re-inject rare value *shapes* (PoS-tag
   sequences) the frequency filter lost;
5. :mod:`training_set` — tag the pages that have dictionary tables with
   the seed, yielding the first labelled dataset.

:func:`build_seed` chains 1-4; :mod:`training_set` consumes its output.
"""

from .aggregation import AttributeClusters, aggregate_attributes
from .candidate_discovery import RawCandidate, discover_candidates
from .diversification import diversify_values
from .seed import Seed, build_seed
from .training_set import TrainingMaterial, build_training_material
from .value_cleaning import clean_values

__all__ = [
    "AttributeClusters",
    "RawCandidate",
    "Seed",
    "TrainingMaterial",
    "aggregate_attributes",
    "build_seed",
    "build_training_material",
    "clean_values",
    "discover_candidates",
    "diversify_values",
]
