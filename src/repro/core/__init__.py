"""The paper's core contribution: the bootstrapped PAE pipeline.

Layout mirrors Figure 2 of the paper:

* :mod:`text` — page tokenization shared by every stage;
* :mod:`preprocess` — seed construction (candidate discovery from
  dictionary tables, attribute aggregation, value cleaning, value
  diversification, training-set generation);
* :mod:`tagger` — CRF/LSTM backend selection;
* :mod:`cleaning` — the four syntactic veto rules and the word2vec
  semantic-drift filter;
* :mod:`bootstrap` — the Tagger–Cleaner cycle of Figure 1;
* :mod:`pipeline` — the :class:`PAEPipeline` facade.
"""

from .bootstrap import BootstrapResult, Bootstrapper, IterationResult
from .catalog import Catalog, CatalogRecord, build_catalog
from .pipeline import PAEPipeline, PipelineResult
from .preprocess import Seed, build_seed
from .sharded import ShardedBootstrapper
from .text import PageText, tokenize_page, tokenize_pages

__all__ = [
    "BootstrapResult",
    "Bootstrapper",
    "Catalog",
    "CatalogRecord",
    "IterationResult",
    "PAEPipeline",
    "PageText",
    "PipelineResult",
    "Seed",
    "ShardedBootstrapper",
    "build_catalog",
    "build_seed",
    "tokenize_page",
    "tokenize_pages",
]
