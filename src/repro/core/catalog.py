"""Catalog assembly: from extracted triples to an enriched catalog.

The business purpose of the paper's system (Section II) is "to extend
taxonomy classes and items with new semantic information" that powers
faceted search. This module performs that last mile: collapsing the
pipeline's raw triples into one catalog record per product, resolving
multi-valued conflicts, and computing the facet index (attribute →
value → product ids) a search frontend consumes.

Conflict policy: some attributes are genuinely multi-valued (a bag can
list two materials); others are functional (one weight). Rather than a
domain ontology — which the paper deliberately avoids — the catalog
applies a frequency heuristic per attribute: if most products carry one
value, the attribute is treated as functional and conflicting values
are reduced to the best-supported one (count, then lexicographic for
determinism).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..types import Triple


@dataclass(frozen=True)
class CatalogRecord:
    """One product's enriched attribute map."""

    product_id: str
    attributes: dict[str, tuple[str, ...]]

    def value_of(self, attribute: str) -> str | None:
        """The attribute's single (first) value, or None."""
        values = self.attributes.get(attribute)
        return values[0] if values else None


@dataclass(frozen=True)
class Catalog:
    """An enriched catalog with a facet index.

    Attributes:
        records: product id → record.
        facets: attribute → value → sorted product ids.
        functional_attributes: attributes the conflict policy reduced
            to a single value per product.
    """

    records: dict[str, CatalogRecord]
    facets: dict[str, dict[str, tuple[str, ...]]]
    functional_attributes: frozenset[str]

    def __len__(self) -> int:
        return len(self.records)

    def find(self, attribute: str, value: str) -> tuple[str, ...]:
        """Faceted search: product ids carrying ``attribute=value``."""
        return self.facets.get(attribute, {}).get(value, ())

    def attribute_fill_rate(self, product_count: int | None = None) -> dict[str, float]:
        """Per-attribute share of products carrying a value.

        Args:
            product_count: denominator; defaults to the catalog size
                (use the input-corpus size for the paper's coverage
                semantics).
        """
        denominator = product_count or max(len(self.records), 1)
        counts: Counter = Counter()
        for record in self.records.values():
            for attribute in record.attributes:
                counts[attribute] += 1
        return {
            attribute: count / denominator
            for attribute, count in counts.items()
        }


def build_catalog(
    triples: Iterable[Triple],
    *,
    alias_map: Mapping[str, str] | None = None,
    functional_threshold: float = 0.8,
) -> Catalog:
    """Collapse triples into an enriched catalog.

    Args:
        triples: pipeline output.
        alias_map: optional surface → canonical attribute map applied
            before assembly.
        functional_threshold: an attribute is treated as functional
            (single-valued per product) when at least this share of its
            products carry exactly one distinct value.

    Returns:
        A :class:`Catalog`.
    """
    alias_map = alias_map or {}
    by_product: dict[str, dict[str, Counter]] = defaultdict(
        lambda: defaultdict(Counter)
    )
    for triple in triples:
        attribute = alias_map.get(triple.attribute, triple.attribute)
        by_product[triple.product_id][attribute][triple.value] += 1

    # Decide functionality per attribute.
    single_valued: Counter = Counter()
    totals: Counter = Counter()
    for product_values in by_product.values():
        for attribute, values in product_values.items():
            totals[attribute] += 1
            if len(values) == 1:
                single_valued[attribute] += 1
    functional = frozenset(
        attribute
        for attribute in totals
        if single_valued[attribute] / totals[attribute]
        >= functional_threshold
    )

    records: dict[str, CatalogRecord] = {}
    facets: dict[str, dict[str, list[str]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for product_id in sorted(by_product):
        attributes: dict[str, tuple[str, ...]] = {}
        for attribute, values in sorted(
            by_product[product_id].items()
        ):
            if attribute in functional and len(values) > 1:
                best = min(
                    values, key=lambda value: (-values[value], value)
                )
                chosen = (best,)
            else:
                chosen = tuple(sorted(values))
            attributes[attribute] = chosen
            for value in chosen:
                facets[attribute][value].append(product_id)
        records[product_id] = CatalogRecord(product_id, attributes)

    return Catalog(
        records=records,
        facets={
            attribute: {
                value: tuple(ids) for value, ids in values.items()
            }
            for attribute, values in facets.items()
        },
        functional_attributes=functional,
    )
