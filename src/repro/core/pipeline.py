"""The public facade: :class:`PAEPipeline`.

One call runs the whole paper system over a page collection:

>>> from repro import PAEPipeline, PipelineConfig
>>> from repro.corpus import Marketplace
>>> dataset = Marketplace(seed=1).generate("vacuum_cleaner", 200)
>>> result = PAEPipeline(PipelineConfig(iterations=2)).run(
...     dataset.product_pages, dataset.query_log
... )
>>> len(result.triples) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import PipelineConfig
from ..runtime.trace import PipelineTrace
from ..types import ProductPage, Triple
from .bootstrap import BootstrapResult, Bootstrapper
from .preprocess.value_cleaning import QueryLogLike


@dataclass(frozen=True)
class PipelineResult:
    """User-facing view of one pipeline run.

    Attributes:
        bootstrap: the full per-iteration record.
        product_count: pages the run consumed (coverage denominator).
        trace: per-stage wall-clock and counter events of the run.
    """

    bootstrap: BootstrapResult
    product_count: int
    trace: PipelineTrace | None = None

    @property
    def triples(self) -> frozenset[Triple]:
        """Final extracted ``<product, attribute, value>`` triples."""
        return self.bootstrap.final_triples

    @property
    def attributes(self) -> tuple[str, ...]:
        """Canonical attribute names the run discovered and tagged."""
        return self.bootstrap.attributes

    @property
    def seed_triples(self) -> frozenset[Triple]:
        """Triples known before any bootstrap cycle."""
        return self.bootstrap.seed_triples

    def coverage(self, iteration: int | None = None) -> float:
        """Fraction of products with at least one triple (Section VI-C)."""
        if self.product_count == 0:
            return 0.0
        covered = self.bootstrap.covered_products(iteration)
        return len(covered) / self.product_count

    def triples_per_product(self) -> float:
        """Average number of distinct triples per covered product."""
        covered = self.bootstrap.covered_products()
        if not covered:
            return 0.0
        return len(self.triples) / len(covered)


class PAEPipeline:
    """End-to-end Product Attribute Extraction, as published.

    Args:
        config: pipeline configuration; the default reproduces the
            paper's reference setup (CRF, both cleaning stages,
            diversification, 5 iterations).
        attribute_subset: optional canonical-attribute restriction for
            specialized models (Section VIII-D).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        attribute_subset: Sequence[str] | None = None,
    ):
        self.config = config or PipelineConfig()
        self.attribute_subset = (
            tuple(attribute_subset)
            if attribute_subset is not None
            else None
        )

    def run(
        self,
        pages: Sequence[ProductPage],
        query_log: QueryLogLike,
        *,
        trace: PipelineTrace | None = None,
    ) -> PipelineResult:
        """Extract attribute-value triples from product pages.

        Re-entrant: every run constructs a fresh
        :class:`~repro.core.bootstrap.Bootstrapper` (itself stateless),
        so one pipeline instance can be reused across datasets — or
        driven concurrently — without any state bleeding between runs.

        Args:
            pages: the category's product pages (HTML).
            query_log: search-log membership filter used during seed
                value cleaning.
            trace: optional stage-timing sink; a fresh
                :class:`PipelineTrace` is created when omitted and
                surfaced on the result either way.

        Returns:
            A :class:`PipelineResult`.
        """
        trace = trace if trace is not None else PipelineTrace()
        bootstrapper = Bootstrapper(self.config, self.attribute_subset)
        bootstrap = bootstrapper.run(pages, query_log, trace=trace)
        return PipelineResult(
            bootstrap=bootstrap,
            product_count=len(pages),
            trace=trace,
        )
