"""The public facade: :class:`PAEPipeline`.

One call runs the whole paper system over a page collection:

>>> from repro import PAEPipeline, PipelineConfig
>>> from repro.corpus import Marketplace
>>> dataset = Marketplace(seed=1).generate("vacuum_cleaner", 200)
>>> result = PAEPipeline(PipelineConfig(iterations=2)).run(
...     dataset.product_pages, dataset.query_log
... )
>>> len(result.triples) > 0
True
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import PipelineConfig
from ..runtime.trace import PipelineTrace
from ..types import ProductPage, Triple
from .bootstrap import BootstrapResult, Bootstrapper
from .preprocess.value_cleaning import QueryLogLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.faults import FaultPlan


@dataclass(frozen=True)
class PipelineResult:
    """User-facing view of one pipeline run.

    Attributes:
        bootstrap: the full per-iteration record.
        product_count: pages the run consumed (coverage denominator).
        trace: per-stage wall-clock and counter events of the run.
    """

    bootstrap: BootstrapResult
    product_count: int
    trace: PipelineTrace | None = None

    @property
    def triples(self) -> frozenset[Triple]:
        """Final extracted ``<product, attribute, value>`` triples."""
        return self.bootstrap.final_triples

    @property
    def attributes(self) -> tuple[str, ...]:
        """Canonical attribute names the run discovered and tagged."""
        return self.bootstrap.attributes

    @property
    def seed_triples(self) -> frozenset[Triple]:
        """Triples known before any bootstrap cycle."""
        return self.bootstrap.seed_triples

    def coverage(self, iteration: int | None = None) -> float:
        """Fraction of products with at least one triple (Section VI-C)."""
        if self.product_count == 0:
            return 0.0
        covered = self.bootstrap.covered_products(iteration)
        return len(covered) / self.product_count

    def triples_per_product(self) -> float:
        """Average number of distinct triples per covered product."""
        covered = self.bootstrap.covered_products()
        if not covered:
            return 0.0
        return len(self.triples) / len(covered)

    @property
    def quarantine(self):
        """The ingest gate's containment ledger (None when disabled)."""
        return self.bootstrap.quarantine

    def resilience_counters(self) -> dict:
        """Per-stage fault/retry/skip counters observed during the run.

        Returns a dict with eight keys: ``"faults"`` (injected faults
        per stage), ``"retries"`` (stage retries per stage),
        ``"skips"`` (optional stages degraded to a skip, per stage),
        ``"pages_corrupted"`` (pages mangled by a fault plan),
        ``"quarantined"`` (ingest-gate rejections per check),
        ``"repaired"`` (ingest-gate normalizations per check),
        ``"circuit_breaker"`` (iteration-health trips per reason),
        ``"trainer_warnings"`` (non-fatal tagger-training degradations
        per kind, e.g. an L-BFGS line-search abort that kept
        best-so-far weights), plus the environment-fault tallies:
        ``"pool"`` (worker deaths/respawns/requeues/poisoned shards
        from the supervised shard pool), ``"memory_pressure"``
        (governor samples/events), ``"checkpoint_disabled"`` and
        ``"prep_cache_disabled"`` (storage-degradation trip counts)
        and ``"prep_cache_contended"`` (runs that fell back to a
        private scratch cache). All empty/zero for an untroubled run.
        """
        if self.trace is None:
            return {
                "faults": {},
                "retries": {},
                "skips": {},
                "pages_corrupted": 0,
                "quarantined": {},
                "repaired": {},
                "circuit_breaker": {},
                "trainer_warnings": {},
                "peak_rss_bytes": 0,
                "pool": {},
                "memory_pressure": {},
                "checkpoint_disabled": 0,
                "prep_cache_disabled": 0,
                "prep_cache_contended": 0,
            }
        return {
            "faults": self.trace.counter_totals("fault_injected"),
            "retries": self.trace.counter_totals("stage_retry"),
            "skips": self.trace.counter_totals("stage_skip"),
            "pages_corrupted": self.trace.counter_totals(
                "pages_corrupted"
            ).get("pages", 0),
            "quarantined": self.trace.counter_totals("quarantine"),
            "repaired": self.trace.counter_totals("ingest_repair"),
            "circuit_breaker": self.trace.counter_totals(
                "circuit_breaker"
            ),
            "trainer_warnings": self.trace.counter_totals(
                "trainer_warning"
            ),
            "peak_rss_bytes": self.trace.counter_totals(
                "peak_rss"
            ).get("bytes", 0),
            "pool": self.trace.counter_totals("pool_supervision"),
            "memory_pressure": self.trace.counter_totals(
                "memory_pressure"
            ),
            "checkpoint_disabled": self.trace.counter_totals(
                "checkpoint_disabled"
            ).get("failures", 0),
            "prep_cache_disabled": self.trace.counter_totals(
                "prep_cache_disabled"
            ).get("failures", 0),
            "prep_cache_contended": self.trace.counter_totals(
                "prep_cache_contended"
            ).get("runs", 0),
        }

    def slim(self) -> "PipelineResult":
        """A copy whose bootstrap record dropped its training material.

        Triples, per-iteration records, the trace and every metric
        survive; only the bulky intermediate corpus is gone. Used by
        sweep workers (``RunnerJob.slim_results``) to keep result
        pickles small.
        """
        from dataclasses import replace

        return replace(self, bootstrap=self.bootstrap.slim())

    def perf_counters(self) -> dict:
        """Performance observables of the run.

        Returns a dict with three keys: ``"feature_cache"`` — the
        cross-iteration feature cache's ``hits``/``misses`` (both zero
        when the cache was disabled or the backend has none) —
        ``"prep_cache"`` — shard-prep artifact cache ``hits``/
        ``misses`` in cached shards (both zero on monolithic runs or
        with the cache disabled/bypassed) — and ``"stage_seconds"`` —
        cumulative wall-clock per pipeline stage from the trace.
        Empty/zero without a trace.
        """
        if self.trace is None:
            return {
                "feature_cache": {"hits": 0, "misses": 0},
                "prep_cache": {"hits": 0, "misses": 0},
                "stage_seconds": {},
            }
        cache = self.trace.counter_totals("feature_cache")
        prep = self.trace.counter_totals("prep_cache")
        return {
            "feature_cache": {
                "hits": cache.get("hits", 0),
                "misses": cache.get("misses", 0),
            },
            "prep_cache": {
                "hits": prep.get("hits", 0),
                "misses": prep.get("misses", 0),
            },
            "stage_seconds": self.trace.stage_totals(),
        }


@contextlib.contextmanager
def _checkpoint_lock(checkpoint):
    """Hold the checkpoint run lock for the duration of a run.

    Two runs pointed at one checkpoint directory would interleave
    snapshot writes; the advisory lock makes the second run queue
    behind the first instead (see ``CheckpointStore.hold_lock``).
    """
    if checkpoint is None:
        yield
        return
    lock = checkpoint.hold_lock()
    try:
        yield
    finally:
        lock.release()


class PAEPipeline:
    """End-to-end Product Attribute Extraction, as published.

    Args:
        config: pipeline configuration; the default reproduces the
            paper's reference setup (CRF, both cleaning stages,
            diversification, 5 iterations).
        attribute_subset: optional canonical-attribute restriction for
            specialized models (Section VIII-D).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        attribute_subset: Sequence[str] | None = None,
    ):
        self.config = config or PipelineConfig()
        self.attribute_subset = (
            tuple(attribute_subset)
            if attribute_subset is not None
            else None
        )

    def run(
        self,
        pages: Sequence[ProductPage],
        query_log: QueryLogLike,
        *,
        trace: PipelineTrace | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        faults: "FaultPlan | None" = None,
    ) -> PipelineResult:
        """Extract attribute-value triples from product pages.

        Re-entrant: every run constructs a fresh
        :class:`~repro.core.bootstrap.Bootstrapper` (itself stateless),
        so one pipeline instance can be reused across datasets — or
        driven concurrently — without any state bleeding between runs.

        Args:
            pages: the category's product pages (HTML).
            query_log: search-log membership filter used during seed
                value cleaning.
            trace: optional stage-timing sink; a fresh
                :class:`PipelineTrace` is created when omitted and
                surfaced on the result either way.
            checkpoint_dir: optional directory for crash-safe
                per-iteration snapshots. A run killed at any point can
                be re-invoked with the same arguments and resumes from
                the last completed iteration, producing bit-identical
                ``final_triples`` to an uninterrupted run.
            resume: with ``checkpoint_dir``, False discards existing
                snapshots and starts over instead of resuming.
            faults: optional
                :class:`~repro.runtime.faults.FaultPlan` injecting
                deterministic faults at named pipeline stages (chaos
                testing).

        Returns:
            A :class:`PipelineResult`.
        """
        trace = trace if trace is not None else PipelineTrace()
        checkpoint = None
        if checkpoint_dir is not None:
            from ..runtime.checkpoint import CheckpointStore

            checkpoint = CheckpointStore(checkpoint_dir, faults=faults)
        bootstrapper = Bootstrapper(self.config, self.attribute_subset)
        with _checkpoint_lock(checkpoint):
            bootstrap = bootstrapper.run(
                pages,
                query_log,
                trace=trace,
                checkpoint=checkpoint,
                resume=resume,
                faults=faults,
            )
        return PipelineResult(
            bootstrap=bootstrap,
            product_count=len(pages),
            trace=trace,
        )

    def run_streamed(
        self,
        source,
        query_log: QueryLogLike,
        *,
        trace: PipelineTrace | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        faults: "FaultPlan | None" = None,
        shard_workers: int | None = None,
        cache_dir: str | None = None,
    ) -> PipelineResult:
        """Extract triples from a streamed, sharded page source.

        The bounded-memory twin of :meth:`run`: pages come from a
        :class:`~repro.corpus.stream.PageSource` shard by shard, the
        per-iteration tagging fans out across worker processes, and the
        result is bit-identical to :meth:`run` on the materialized page
        list of the same source — for any shard size and worker count
        (see :mod:`repro.core.sharded` for the two documented edge-case
        divergences). Peak RSS is recorded on the trace and surfaced
        via ``resilience_counters()["peak_rss_bytes"]``.

        Args:
            source: the category's page shards
                (:class:`~repro.corpus.stream.GeneratedPageSource`,
                :class:`~repro.corpus.stream.JsonlPageSource`, or
                :class:`~repro.corpus.stream.MaterializedPageSource`).
            query_log: search-log membership filter.
            trace: optional stage-timing sink.
            checkpoint_dir: optional crash-safe snapshot directory;
                adds per-shard tag snapshots on top of the
                per-iteration ones, so a killed run resumes
                mid-iteration without re-tagging completed shards.
            resume: with ``checkpoint_dir``, False restarts.
            faults: optional fault plan; page-corruption hooks fire
                inside shard prep workers with shard-deterministic
                decisions (and disable the prep cache for the run).
            shard_workers: worker processes per shard fan-out (None =
                visible CPUs).
            cache_dir: override for the shard cache directory; with
                the prep cache enabled it doubles as a persistent
                prep-artifact root reused by later runs.

        Returns:
            A :class:`PipelineResult` whose ``product_count`` is the
            source's page count.
        """
        trace = trace if trace is not None else PipelineTrace()
        checkpoint = None
        if checkpoint_dir is not None:
            from ..runtime.checkpoint import CheckpointStore

            checkpoint = CheckpointStore(checkpoint_dir, faults=faults)
        from .sharded import ShardedBootstrapper

        bootstrapper = ShardedBootstrapper(
            self.config,
            self.attribute_subset,
            shard_workers=shard_workers,
        )
        with _checkpoint_lock(checkpoint):
            bootstrap = bootstrapper.run_source(
                source,
                query_log,
                trace=trace,
                checkpoint=checkpoint,
                resume=resume,
                faults=faults,
                cache_dir=cache_dir,
            )
        return PipelineResult(
            bootstrap=bootstrap,
            product_count=source.page_count,
            trace=trace,
        )
