"""Ensemble tagger: CRF and BiLSTM combined.

The paper's conclusion: the two models "often make similar mistakes,
but they can complement each other" — and RNN+CRF combination "has
much potential especially to improve the property level coverage".

Two combination policies over the models' decoded spans:

* ``"agreement"`` — keep a span only when both models propose the same
  (start, end, attribute). Precision-first; fits the business case.
* ``"union"`` — keep every span either model proposes; on overlap the
  CRF (the paper's more stable model) wins. Coverage-first.

The ensemble implements the standard
:class:`~repro.ml.base.SequenceTagger` protocol, so it can drive the
bootstrap loop like any other backend (``make_tagger`` recognises
``tagger="ensemble"`` when constructed through
:func:`ensemble_pipeline_config`).
"""

from __future__ import annotations

from typing import Sequence

from ..config import CrfConfig, LstmConfig
from ..errors import ConfigError
from ..ml import CrfTagger, LstmTagger
from ..nlp.bio import decode_bio, encode_bio
from ..perf.cache import FeatureCache
from ..types import Sentence, TaggedSentence


class EnsembleTagger:
    """CRF + BiLSTM span combination.

    Args:
        policy: ``"agreement"`` (intersection) or ``"union"``.
        crf_config: CRF hyperparameters.
        lstm_config: BiLSTM hyperparameters.
        feature_cache: optional shared :class:`FeatureCache` forwarded
            to the CRF member.
    """

    POLICIES = ("agreement", "union")

    def __init__(
        self,
        policy: str = "agreement",
        crf_config: CrfConfig | None = None,
        lstm_config: LstmConfig | None = None,
        feature_cache: FeatureCache | bool | None = None,
    ):
        if policy not in self.POLICIES:
            raise ConfigError(
                f"unknown ensemble policy {policy!r}; "
                f"choose from {self.POLICIES}"
            )
        self.policy = policy
        self._crf = CrfTagger(crf_config, feature_cache=feature_cache)
        self._lstm = LstmTagger(lstm_config)

    def train(self, dataset: Sequence[TaggedSentence]) -> "EnsembleTagger":
        """Train both member models on the same data."""
        self._crf.train(dataset)
        self._lstm.train(dataset)
        return self

    def tag(self, sentences: Sequence[Sentence]) -> list[TaggedSentence]:
        """Tag with both models and combine their spans."""
        crf_tagged = self._crf.tag(sentences)
        lstm_tagged = self._lstm.tag(sentences)
        combined: list[TaggedSentence] = []
        for sentence, from_crf, from_lstm in zip(
            sentences, crf_tagged, lstm_tagged
        ):
            crf_spans = decode_bio(from_crf.labels)
            lstm_spans = decode_bio(from_lstm.labels)
            if self.policy == "agreement":
                spans = sorted(set(crf_spans) & set(lstm_spans))
            else:
                spans = self._union_spans(crf_spans, lstm_spans)
            labels = encode_bio(len(sentence), spans)
            combined.append(TaggedSentence(sentence, tuple(labels)))
        return combined

    @staticmethod
    def _union_spans(
        crf_spans: list[tuple[int, int, str]],
        lstm_spans: list[tuple[int, int, str]],
    ) -> list[tuple[int, int, str]]:
        """Union with CRF priority on overlap."""
        occupied: set[int] = set()
        result: list[tuple[int, int, str]] = []
        for start, end, attribute in crf_spans:
            result.append((start, end, attribute))
            occupied.update(range(start, end))
        for start, end, attribute in lstm_spans:
            if not occupied & set(range(start, end)):
                result.append((start, end, attribute))
                occupied.update(range(start, end))
        return sorted(result)

    @property
    def members(self) -> tuple[CrfTagger, LstmTagger]:
        """The underlying models (for inspection)."""
        return self._crf, self._lstm
