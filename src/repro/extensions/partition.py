"""Attribute-partition optimization (§VIII-D's open problem).

The paper: specialized models multiply attribute coverage, but fully
per-attribute models can lose precision because "the ML model uses the
distinction between attributes to better tag new elements" — and it
closes with "this can be addressed as an optimization problem, namely,
given a category, finding the best partition of attributes that
maximizes the coverage and precision for each attribute. We leave this
task for future work."

This module implements that search: a greedy agglomerative optimizer
over attribute partitions. Starting from singletons, it repeatedly
merges the pair of blocks that most improves a precision-weighted
coverage objective, evaluating each candidate partition by actually
running specialized bootstrap pipelines. Guaranteed to evaluate at
most O(k³) runs for k attributes — affordable because category
attribute counts are single-digit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..config import PipelineConfig
from ..core.bootstrap import Bootstrapper
from ..core.preprocess.value_cleaning import QueryLogLike
from ..evaluation import attribute_coverage, precision
from ..evaluation.truth import TruthSample
from ..types import ProductPage


@dataclass(frozen=True)
class PartitionScore:
    """Objective components for one partition."""

    partition: tuple[tuple[str, ...], ...]
    objective: float
    mean_precision: float
    mean_coverage: float


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of the greedy search."""

    best: PartitionScore
    history: tuple[PartitionScore, ...]

    @property
    def blocks(self) -> tuple[tuple[str, ...], ...]:
        return self.best.partition


def _normalize(partition: Sequence[Sequence[str]]):
    return tuple(
        sorted(tuple(sorted(block)) for block in partition)
    )


def evaluate_partition(
    partition: Sequence[Sequence[str]],
    pages: Sequence[ProductPage],
    query_log: QueryLogLike,
    truth: TruthSample,
    config: PipelineConfig,
    *,
    precision_weight: float = 2.0,
) -> PartitionScore:
    """Run one specialized pipeline per block and score the partition.

    The objective is ``mean_coverage * mean_precision**w`` — coverage
    matters, but precision is weighted harder (``w`` defaults to 2),
    matching the paper's business priority.
    """
    partition = _normalize(partition)
    attributes = [name for block in partition for name in block]
    precisions: list[float] = []
    coverages: list[float] = []
    for block in partition:
        result = Bootstrapper(config, attribute_subset=block).run(
            list(pages), query_log
        )
        triples = result.final_triples
        breakdown = precision(triples, truth)
        precisions.append(breakdown.precision if breakdown.judged else 0.0)
        per_attribute = attribute_coverage(
            triples, len(pages), dict(truth.alias_map)
        )
        for name in block:
            coverages.append(per_attribute.get(name, 0.0))
    mean_precision = sum(precisions) / len(precisions)
    mean_coverage = sum(coverages) / max(len(coverages), 1)
    objective = mean_coverage * mean_precision ** precision_weight
    return PartitionScore(
        partition=partition,
        objective=objective,
        mean_precision=mean_precision,
        mean_coverage=mean_coverage,
    )


def optimize_partition(
    attributes: Sequence[str],
    pages: Sequence[ProductPage],
    query_log: QueryLogLike,
    truth: TruthSample,
    config: PipelineConfig | None = None,
    *,
    precision_weight: float = 2.0,
    evaluator: Callable[..., PartitionScore] | None = None,
) -> PartitionResult:
    """Greedy agglomerative search over attribute partitions.

    Args:
        attributes: canonical attribute names to partition.
        pages: the category's pages.
        query_log: search-log filter.
        truth: evaluation truth sample.
        config: pipeline configuration for the specialized runs (use a
            small ``iterations`` — the search multiplies run counts).
        precision_weight: exponent on precision in the objective.
        evaluator: injection point for tests (defaults to
            :func:`evaluate_partition`).

    Returns:
        The best partition found and the greedy trajectory.
    """
    if not attributes:
        raise ValueError("attributes must be non-empty")
    config = config or PipelineConfig(iterations=1)
    evaluate = evaluator or (
        lambda part: evaluate_partition(
            part, pages, query_log, truth, config,
            precision_weight=precision_weight,
        )
    )

    current = [
        (name,) for name in sorted(dict.fromkeys(attributes))
    ]
    current_score = evaluate(current)
    history = [current_score]
    while len(current) > 1:
        best_merge: PartitionScore | None = None
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                merged = [
                    block
                    for index, block in enumerate(current)
                    if index not in (i, j)
                ]
                merged.append(tuple(current[i]) + tuple(current[j]))
                candidate = evaluate(merged)
                if (
                    best_merge is None
                    or candidate.objective > best_merge.objective
                ):
                    best_merge = candidate
        assert best_merge is not None
        if best_merge.objective <= current_score.objective:
            break
        current = [list(block) for block in best_merge.partition]
        current_score = best_merge
        history.append(best_merge)
    best = max(history, key=lambda score: score.objective)
    return PartitionResult(best=best, history=tuple(history))
