"""Extensions: the paper's future-work directions, implemented.

Section IX lists future work: "improving the machine learning model by
combining different approaches" and "partitioning the attributes to
obtain better precision/coverage". Both are built here, on top of the
unchanged core:

* :class:`EnsembleTagger` — combines the CRF and the BiLSTM. The paper
  observes "they often make similar mistakes, but they can complement
  each other"; the ensemble supports an *agreement* policy (intersect
  spans — precision-first, matching the business case) and a *union*
  policy (coverage-first).
* :func:`optimize_partition` — greedy search for an attribute
  partition that maximizes a precision-weighted coverage objective
  (§VIII-D: "this can be addressed as an optimization problem ... we
  leave this task for future work").
"""

from .ensemble import EnsembleTagger
from .partition import PartitionResult, evaluate_partition, optimize_partition

__all__ = [
    "EnsembleTagger",
    "PartitionResult",
    "evaluate_partition",
    "optimize_partition",
]
