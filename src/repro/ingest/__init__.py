"""Dirty-input hardening: the ingest gate and page quarantine.

Public surface:

* :class:`IngestGate` — validates/normalizes pages under a policy
  (``strict`` / ``repair`` / ``drop``) with resource guards.
* :class:`IngestResult` — gated pages plus diagnostics.
* :class:`Quarantine` / :class:`QuarantineEntry` — the containment
  ledger that round-trips through checkpoints.
* :class:`QuarantineLog` — concurrent-writer-safe on-disk JSONL
  ledger (the serve daemon's persistent quarantine).
"""

from .gate import FIXABLE_CHECKS, IngestGate, IngestResult
from .quarantine import Quarantine, QuarantineEntry, QuarantineLog

__all__ = [
    "FIXABLE_CHECKS",
    "IngestGate",
    "IngestResult",
    "Quarantine",
    "QuarantineEntry",
    "QuarantineLog",
]
