"""Structured containment for pages the ingest gate rejects.

A quarantined page is evidence, not garbage: every rejection is kept as
a :class:`QuarantineEntry` with enough diagnostics (page id, failing
check, exception type, byte offset) to reproduce and triage the
failure offline. The :class:`Quarantine` ledger is plain data — JSON
round-trippable (so it survives checkpoints), order-preserving and
comparable — which is what lets the chaos suite assert "exactly the
injected corruption was contained, nothing else".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class QuarantineEntry:
    """One contained page (or serialized row) with its diagnostics.

    Attributes:
        page_id: product id of the page (or a synthetic ``line-N`` id
            for rows that failed before an id could be read).
        check: the gate check that failed (``"page_bytes"``,
            ``"truncated_markup"``, ``"jsonl"``, …).
        error: exception type name, or the check name for checks that
            reject without raising.
        detail: human-readable failure description.
        byte_offset: position of the offending content within the
            page, when the check can localize it.
        source: where the page came from (``"ingest"`` for in-memory
            gating, a file path for loader rejects).
        line: 1-based line number for loader rejects.
    """

    page_id: str
    check: str
    error: str
    detail: str
    byte_offset: int | None = None
    source: str = "ingest"
    line: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "QuarantineEntry":
        return cls(
            page_id=record["page_id"],
            check=record["check"],
            error=record["error"],
            detail=record["detail"],
            byte_offset=record.get("byte_offset"),
            source=record.get("source", "ingest"),
            line=record.get("line"),
        )


class Quarantine:
    """An append-only ledger of contained pages.

    Picklable, JSON round-trippable and order-preserving; two ledgers
    compare equal iff their entries match exactly, which is the
    property the checkpoint/resume contract asserts.
    """

    def __init__(self, entries: list[QuarantineEntry] | None = None):
        self.entries: list[QuarantineEntry] = list(entries or [])

    def add(self, entry: QuarantineEntry) -> None:
        self.entries.append(entry)

    def counts_by_check(self) -> dict[str, int]:
        """``{check: rejected page count}`` across the ledger."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.check] = counts.get(entry.check, 0) + 1
        return counts

    def page_ids(self) -> set[str]:
        return {entry.page_id for entry in self.entries}

    # -- serialisation -------------------------------------------------

    def to_payload(self) -> list[dict]:
        """A JSON-ready view (checkpoints, traces, reports)."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_payload(cls, payload: list[dict]) -> "Quarantine":
        return cls([QuarantineEntry.from_dict(rec) for rec in payload])

    def digest(self) -> str:
        """Stable SHA-256 of the ledger contents (checkpoint identity)."""
        text = json.dumps(
            self.to_payload(), sort_keys=True, ensure_ascii=False
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- dunder plumbing ----------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Quarantine):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Quarantine(entries={len(self.entries)}, "
            f"checks={self.counts_by_check()})"
        )
