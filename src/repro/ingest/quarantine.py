"""Structured containment for pages the ingest gate rejects.

A quarantined page is evidence, not garbage: every rejection is kept as
a :class:`QuarantineEntry` with enough diagnostics (page id, failing
check, exception type, byte offset) to reproduce and triage the
failure offline. The :class:`Quarantine` ledger is plain data — JSON
round-trippable (so it survives checkpoints), order-preserving and
comparable — which is what lets the chaos suite assert "exactly the
injected corruption was contained, nothing else".
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import asdict, dataclass, replace
from typing import Iterator


@dataclass(frozen=True, slots=True)
class QuarantineEntry:
    """One contained page (or serialized row) with its diagnostics.

    Attributes:
        page_id: product id of the page (or a synthetic ``line-N`` id
            for rows that failed before an id could be read).
        check: the gate check that failed (``"page_bytes"``,
            ``"truncated_markup"``, ``"jsonl"``, …).
        error: exception type name, or the check name for checks that
            reject without raising.
        detail: human-readable failure description.
        byte_offset: position of the offending content within the
            page, when the check can localize it.
        source: where the page came from (``"ingest"`` for in-memory
            gating, a file path for loader rejects).
        line: 1-based line number for loader rejects.
    """

    page_id: str
    check: str
    error: str
    detail: str
    byte_offset: int | None = None
    source: str = "ingest"
    line: int | None = None

    def with_source(self, source: str) -> "QuarantineEntry":
        """A copy attributed to a different origin (e.g. ``"serve"``).

        The serve daemon re-stamps gate rejections with
        ``source="serve"`` before they hit the shared on-disk ledger,
        so batch and online rejections stay distinguishable.
        """
        return replace(self, source=source)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "QuarantineEntry":
        return cls(
            page_id=record["page_id"],
            check=record["check"],
            error=record["error"],
            detail=record["detail"],
            byte_offset=record.get("byte_offset"),
            source=record.get("source", "ingest"),
            line=record.get("line"),
        )


class Quarantine:
    """An append-only ledger of contained pages.

    Picklable, JSON round-trippable and order-preserving; two ledgers
    compare equal iff their entries match exactly, which is the
    property the checkpoint/resume contract asserts. Appends are
    lock-guarded so concurrent server workers can share one ledger;
    the lock is per-process state and is rebuilt on unpickle.
    """

    def __init__(self, entries: list[QuarantineEntry] | None = None):
        self.entries: list[QuarantineEntry] = list(entries or [])
        self._lock = threading.Lock()

    def add(self, entry: QuarantineEntry) -> None:
        with self._lock:
            self.entries.append(entry)

    def counts_by_check(self) -> dict[str, int]:
        """``{check: rejected page count}`` across the ledger."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.check] = counts.get(entry.check, 0) + 1
        return counts

    def page_ids(self) -> set[str]:
        return {entry.page_id for entry in self.entries}

    # -- serialisation -------------------------------------------------

    def to_payload(self) -> list[dict]:
        """A JSON-ready view (checkpoints, traces, reports)."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_payload(cls, payload: list[dict]) -> "Quarantine":
        return cls([QuarantineEntry.from_dict(rec) for rec in payload])

    def digest(self) -> str:
        """Stable SHA-256 of the ledger contents (checkpoint identity)."""
        text = json.dumps(
            self.to_payload(), sort_keys=True, ensure_ascii=False
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- dunder plumbing ----------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Quarantine):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Quarantine(entries={len(self.entries)}, "
            f"checks={self.counts_by_check()})"
        )

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class QuarantineLog:
    """A concurrent-writer-safe on-disk quarantine ledger (JSONL).

    The in-memory :class:`Quarantine` dies with its run; the serve
    daemon needs rejections to survive the process and to interleave
    safely from many worker threads. Each entry is serialized to one
    JSON line and appended with a *single* ``os.write`` on an
    ``O_APPEND`` descriptor under a lock — lines can never interleave
    mid-record, so a reader (or a second process tailing the file)
    always sees whole entries.

    Args:
        path: ledger file; created (with parents) on first append.
        source: stamped onto every appended entry (``"serve"`` for the
            daemon), overriding the entry's own source so batch and
            serve rejections are distinguishable in one shared file.
    """

    def __init__(self, path: str | os.PathLike, source: str | None = None):
        self.path = pathlib.Path(path)
        self.source = source
        self._lock = threading.Lock()
        self._fd: int | None = None
        self.appended = 0

    def append(self, entry: QuarantineEntry) -> QuarantineEntry:
        """Atomically append one entry; returns the stamped entry."""
        if self.source is not None and entry.source != self.source:
            entry = entry.with_source(self.source)
        line = (
            json.dumps(entry.to_dict(), ensure_ascii=False, sort_keys=True)
            + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._fd is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                    0o644,
                )
            os.write(self._fd, line)
            self.appended += 1
        return entry

    def extend(self, entries: "Quarantine | list[QuarantineEntry]") -> int:
        """Append every entry of a ledger; returns the count written."""
        count = 0
        for entry in entries:
            self.append(entry)
            count += 1
        return count

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    @staticmethod
    def load(path: str | os.PathLike) -> Quarantine:
        """Read a ledger file back into an in-memory :class:`Quarantine`."""
        ledger = Quarantine()
        file_path = pathlib.Path(path)
        if not file_path.exists():
            return ledger
        with open(file_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    ledger.add(QuarantineEntry.from_dict(json.loads(line)))
        return ledger

    def __enter__(self) -> "QuarantineLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
