"""The ingest gate: validate and normalize pages before the pipeline.

The pipeline downstream of this gate may assume every page is sane:
bounded in size, parseable within a wall-clock budget, nested within
reason, free of mojibake and entity garbage, and unique by product id.
The gate enforces those invariants under one of three policies
(:class:`~repro.config.IngestConfig`):

* ``strict`` — the first failing page raises
  :class:`~repro.errors.PageQuarantinedError`;
* ``repair`` — fixable damage is normalized in place (truncated tag
  tails cut, unclosed elements closed, entity garbage and replacement
  characters stripped) and only unfixable pages are quarantined;
* ``drop`` — any failing page is quarantined untouched.

Checks, in evaluation order:

``page_bytes``        UTF-8 size over ``max_page_bytes`` (unfixable)
``duplicate_id``      product id already seen in this collection
                      (unfixable — the duplicate occurrence goes)
``mojibake``          U+FFFD replacement characters (fixable)
``entity_garbage``    malformed entity references over
                      ``max_bad_entities`` (fixable)
``truncated_markup``  document ends inside an unterminated tag
                      (fixable)
``unclosed_tags``     open elements at end of input over
                      ``max_unclosed_tags`` (fixable)
``parse_seconds``     parse exceeded ``parse_budget_seconds``
                      (unfixable; SIGALRM on the main thread, a
                      post-hoc wall-clock check — counted under
                      ``parse_budget_soft`` — on worker threads)
``open_depth``        DOM nesting over ``max_dom_depth`` (unfixable)
``table_rows``        a table over ``max_table_rows`` rows (unfixable)

Every rejection lands in a :class:`~repro.ingest.quarantine.Quarantine`
ledger with structured diagnostics; the gate itself never raises except
under ``strict``.
"""

from __future__ import annotations

import re
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..config import IngestConfig
from ..errors import HtmlLimitError, PageQuarantinedError
from ..html.dom import Element
from ..html.lexer import HtmlToken, tokenize_html
from ..html.parser import (
    _IMPLIED_CLOSERS,
    _SELF_NESTING,
    parse_token_stream,
)
from ..types import ProductPage
from .quarantine import Quarantine, QuarantineEntry

#: Checks whose damage the ``repair`` policy can normalize away.
FIXABLE_CHECKS = (
    "mojibake",
    "entity_garbage",
    "truncated_markup",
    "unclosed_tags",
)

#: Malformed entity references: ``&;``, ``&&``, ``&#`` or ``&#x``
#: followed by nothing numeric. Valid references (``&nbsp;``,
#: ``&#1234;``) and prose ampersands ("A & B") never match.
_BAD_ENTITY_RE = re.compile(
    r"&(?:#[xX](?![0-9a-fA-F])|#(?![0-9xX])|;|(?=&))"
)

#: A trailing ``<`` that opens a tag but never closes: truncation scar.
_TAG_START_RE = re.compile(r"</?[a-zA-Z]")

#: Fused damage scan: one compiled pass finds both U+FFFD replacement
#: characters and malformed entity references, replacing the separate
#: ``str.find`` + entity ``finditer`` passes on the prep hot path. The
#: two alternatives can never match at the same offset, so the fused
#: scan reports exactly what the sequential scans would.
_DAMAGE_RE = re.compile(
    r"(�)|&(?:#[xX](?![0-9a-fA-F])|#(?![0-9xX])|;|(?=&))"
)


@dataclass(frozen=True)
class IngestResult:
    """What the gate produced from one page collection.

    Attributes:
        pages: pages that passed (possibly repaired), input order kept.
        quarantine: ledger of rejected pages with diagnostics.
        repaired: ``{check: page count}`` of normalizations applied
            (empty under ``strict``/``drop``).
        pages_in: size of the input collection.
        warnings: counted degradations that rejected pages without the
            full check running (currently ``parse_budget_soft``: the
            wall-clock fallback tripping where SIGALRM is unavailable).
        roots: parsed DOM roots aligned with ``pages`` when the caller
            asked :meth:`IngestGate.process` to ``keep_roots`` — the
            gate parses every admitted page anyway, so downstream
            tokenization and candidate discovery can reuse the tree
            instead of re-parsing; ``None`` otherwise.
    """

    pages: list[ProductPage]
    quarantine: Quarantine
    repaired: dict[str, int] = field(default_factory=dict)
    pages_in: int = 0
    warnings: dict[str, int] = field(default_factory=dict)
    roots: list[Element] | None = None

    @property
    def repaired_total(self) -> int:
        return sum(self.repaired.values())


def _soft_budget(
    seconds: float, warnings: dict[str, int] | None
) -> Iterator[None]:
    """Post-hoc wall-clock budget for threads SIGALRM cannot reach.

    A worker thread cannot interrupt a runaway parse, but it can still
    refuse its output: the parse is timed, and an overrun raises the
    same :class:`HtmlLimitError` the hard budget would — after the
    fact — so the page is quarantined instead of admitted. Each soft
    trip is counted under ``parse_budget_soft`` (the serve daemon
    surfaces the counter through its health endpoint).
    """
    started = time.monotonic()
    yield
    elapsed = time.monotonic() - started
    if elapsed > seconds:
        if warnings is not None:
            warnings["parse_budget_soft"] = (
                warnings.get("parse_budget_soft", 0) + 1
            )
        raise HtmlLimitError("parse_seconds", elapsed, seconds)


@contextmanager
def _parse_budget(
    seconds: float,
    warnings: dict[str, int] | None = None,
    force_soft: bool = False,
) -> Iterator[None]:
    """Bound a parse with SIGALRM, preserving any outer timer.

    The pipeline's test watchdog and this budget share the one ITIMER_REAL
    slot, so the previous handler *and* remaining time are restored on
    exit. Off the main thread — where ``signal.signal`` raises
    ``ValueError`` — the budget degrades to the post-hoc wall-clock
    check of :func:`_soft_budget` instead of crashing the request:
    server worker threads still reject budget-blowing pages, they just
    cannot interrupt the parse mid-flight. ``force_soft`` selects the
    same degradation unconditionally: shard worker *processes* own
    their main thread, but hijacking SIGALRM inside a pool child races
    the pool's own lifecycle signals, so the sharded bootstrap gates
    with the counted wall-clock budget instead of running unbudgeted.
    """
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return
    if force_soft or (
        threading.current_thread() is not threading.main_thread()
    ):
        yield from _soft_budget(seconds, warnings)
        return

    def _expired(signum, frame):
        raise HtmlLimitError("parse_seconds", seconds, seconds)

    previous_handler = signal.getsignal(signal.SIGALRM)
    outer_remaining = signal.getitimer(signal.ITIMER_REAL)[0]
    started = time.monotonic()
    budget = (
        min(seconds, outer_remaining) if outer_remaining > 0 else seconds
    )
    try:
        signal.signal(signal.SIGALRM, _expired)
    except ValueError:
        # Raced the main-thread check (e.g. a non-main interpreter):
        # degrade to the soft budget rather than crash the request.
        yield from _soft_budget(seconds, warnings)
        return
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if outer_remaining > 0:
            elapsed = time.monotonic() - started
            signal.setitimer(
                signal.ITIMER_REAL,
                max(0.001, outer_remaining - elapsed),
            )


def _mojibake_offset(html: str) -> int | None:
    """Offset of the first U+FFFD replacement character, if any."""
    offset = html.find("�")
    return None if offset == -1 else offset


def _scan_damage(html: str) -> tuple[int | None, list[int]]:
    """One pass over ``html`` for mojibake and malformed entities.

    Returns ``(mojibake_offset, entity_offsets)``. When mojibake is
    present the scan stops at its first occurrence and the entity list
    is meaningless (the repair path strips the replacement characters
    and must re-scan the mutated document anyway — entity offsets
    computed before the strip would be wrong).
    """
    entity_offsets: list[int] = []
    for match in _DAMAGE_RE.finditer(html):
        if match.group(1) is not None:
            return match.start(), entity_offsets
        entity_offsets.append(match.start())
    return None, entity_offsets


def _bad_entities(html: str) -> list[int]:
    """Offsets of malformed entity references."""
    return [match.start() for match in _BAD_ENTITY_RE.finditer(html)]


def _truncation_offset(html: str) -> int | None:
    """Offset of a trailing unterminated tag, if the document has one."""
    lt = html.rfind("<")
    if lt == -1 or ">" in html[lt:]:
        return None
    if _TAG_START_RE.match(html, lt) is None:
        return None
    return lt


def _unclosed_elements(html: str) -> list[str]:
    """Open (non-void, non-self-closing) elements left at end of input.

    Mirrors the parser's stack discipline — implied closers and
    auto-closing end tags included — so the count matches exactly what
    :func:`parse_html` would force-close at EOF.
    """
    return _unclosed_from_tokens(tokenize_html(html))


def _unclosed_from_tokens(tokens: Iterable[HtmlToken]) -> list[str]:
    """Token-stream form of :func:`_unclosed_elements`.

    The gate lexes each document exactly once and runs both this check
    and tree construction over the same materialized token list.
    """
    stack: list[str] = []
    for token in tokens:
        if token.kind == "start":
            closers = _IMPLIED_CLOSERS.get(token.value, frozenset())
            while stack and stack[-1] in closers:
                stack.pop()
            if (
                token.value in _SELF_NESTING
                and stack
                and stack[-1] == token.value
            ):
                stack.pop()
            if not token.self_closing:
                stack.append(token.value)
        elif token.kind == "end":
            for depth in range(len(stack) - 1, -1, -1):
                if stack[depth] == token.value:
                    del stack[depth:]
                    break
    return stack


class IngestGate:
    """Validates and normalizes a page collection under a policy.

    Args:
        config: gate configuration; defaults reproduce the shipped
            ``repair`` policy with generous resource bounds.
        force_soft_budget: always use the counted wall-clock parse
            budget instead of SIGALRM — set by shard worker processes,
            where installing signal handlers would race the process
            pool's lifecycle management.
    """

    def __init__(
        self,
        config: IngestConfig | None = None,
        force_soft_budget: bool = False,
    ):
        self.config = config or IngestConfig()
        self.force_soft_budget = force_soft_budget

    def process(
        self,
        pages: Sequence[ProductPage],
        keep_roots: bool = False,
    ) -> IngestResult:
        """Gate every page; never raises except under ``strict``.

        Args:
            pages: the collection to gate.
            keep_roots: also return the DOM root the gate parsed for
                each admitted page (aligned with ``result.pages``), so
                callers can skip their own ``parse_html`` pass.

        Returns:
            An :class:`IngestResult` whose ``pages`` preserve input
            order (minus quarantined pages) and whose ``quarantine``
            records every rejection with diagnostics.
        """
        kept: list[ProductPage] = []
        roots: list[Element] | None = [] if keep_roots else None
        quarantine = Quarantine()
        repaired: dict[str, int] = {}
        warnings: dict[str, int] = {}
        seen_ids: set[str] = set()
        for index, page in enumerate(pages):
            entry, result_page, page_repairs, root = self._gate_page(
                page, seen_ids, warnings
            )
            if entry is not None:
                if self.config.policy == "strict":
                    raise PageQuarantinedError(
                        entry.page_id, entry.check, entry.detail
                    )
                quarantine.add(entry)
                continue
            assert result_page is not None
            seen_ids.add(result_page.product_id)
            kept.append(result_page)
            if roots is not None:
                assert root is not None
                roots.append(root)
            for check in page_repairs:
                repaired[check] = repaired.get(check, 0) + 1
        return IngestResult(
            pages=kept,
            quarantine=quarantine,
            repaired=repaired,
            pages_in=len(pages),
            warnings=warnings,
            roots=roots,
        )

    # -- per-page machinery --------------------------------------------

    def gate_page(
        self,
        page: ProductPage,
        seen_ids: set[str],
        warnings: dict[str, int] | None = None,
    ) -> tuple[QuarantineEntry | None, ProductPage | None, list[str]]:
        """Gate one page against an externally-owned seen-id set.

        The per-page unit of :meth:`process`, exposed for callers that
        stream pages instead of holding a collection (shard workers in
        :mod:`repro.core.sharded`). Never raises — policy escalation
        (``strict``) is the caller's job, since only the caller knows
        the global page order. The caller must add kept pages'
        product ids to ``seen_ids`` itself.
        """
        entry, kept, repairs, _ = self._gate_page(page, seen_ids, warnings)
        return entry, kept, repairs

    def gate_page_prepared(
        self,
        page: ProductPage,
        seen_ids: set[str],
        warnings: dict[str, int] | None = None,
    ) -> tuple[
        QuarantineEntry | None,
        ProductPage | None,
        list[str],
        Element | None,
    ]:
        """Like :meth:`gate_page`, but also return the parsed DOM root.

        The gate must parse every admitted page to run its structural
        guards; callers that tokenize or mine the same page immediately
        afterwards (shard prep) reuse that tree instead of paying a
        second ``parse_html`` pass. The root is parsed from exactly the
        html of the returned page, so it is interchangeable with a
        fresh parse of ``kept_page.html``.
        """
        return self._gate_page(page, seen_ids, warnings)

    def _gate_page(
        self,
        page: ProductPage,
        seen_ids: set[str],
        warnings: dict[str, int] | None = None,
    ) -> tuple[
        QuarantineEntry | None,
        ProductPage | None,
        list[str],
        Element | None,
    ]:
        """Gate one page.

        Returns ``(quarantine_entry, kept_page, repairs, root)`` where
        exactly one of the first two is non-None; ``root`` is the
        parsed DOM of ``kept_page`` when the page is admitted.

        Hot-path shape: one fused regex scan covers the mojibake and
        entity-garbage checks, and the document is lexed exactly once —
        the same token list feeds the unclosed-element check and tree
        construction. Only the rare repair paths (which mutate the html
        between checks) re-scan or re-lex.
        """
        config = self.config
        html = page.html
        repairs: list[str] = []

        # Unfixable pre-checks on the untouched page.
        size = len(html.encode("utf-8", errors="surrogatepass"))
        if size > config.max_page_bytes:
            return self._reject(
                page, "page_bytes",
                f"page is {size} bytes (max {config.max_page_bytes})",
            ), None, repairs, None
        if page.product_id in seen_ids:
            return self._reject(
                page, "duplicate_id",
                f"product id {page.product_id!r} already seen "
                "in this collection",
            ), None, repairs, None

        # Fixable structural damage: one scan finds both mojibake and
        # entity garbage on the (overwhelmingly common) clean path.
        allow_repair = config.policy == "repair"
        offset, bad_entities = _scan_damage(html)
        if offset is not None:
            if not allow_repair:
                return self._reject(
                    page, "mojibake",
                    "page contains U+FFFD replacement characters "
                    "(byte-level encoding damage)",
                    byte_offset=offset,
                ), None, repairs, None
            html = html.replace("�", "")
            repairs.append("mojibake")
            # The strip shifted every offset after it: re-scan the
            # mutated document, exactly as the sequential path would.
            bad_entities = _bad_entities(html)
        if len(bad_entities) > config.max_bad_entities:
            if not allow_repair:
                return self._reject(
                    page, "entity_garbage",
                    f"{len(bad_entities)} malformed entity references "
                    f"(max {config.max_bad_entities})",
                    byte_offset=bad_entities[0],
                ), None, repairs, None
            html = _BAD_ENTITY_RE.sub("", html)
            repairs.append("entity_garbage")
        offset = _truncation_offset(html)
        if offset is not None:
            if not allow_repair:
                return self._reject(
                    page, "truncated_markup",
                    "document ends inside an unterminated tag",
                    byte_offset=offset,
                ), None, repairs, None
            html = html[:offset]
            repairs.append("truncated_markup")

        # Lex once: the unclosed-element check and the parse consume
        # the same token list. (The lexer never raises; pathological
        # input surfaces as limit errors during tree construction,
        # inside the budget, as before.)
        tokens: list[HtmlToken] | None = list(tokenize_html(html))
        unclosed = _unclosed_from_tokens(tokens)
        if len(unclosed) > config.max_unclosed_tags:
            if not allow_repair:
                return self._reject(
                    page, "unclosed_tags",
                    f"{len(unclosed)} unclosed elements at end of "
                    f"input (max {config.max_unclosed_tags})",
                ), None, repairs, None
            html = html + "".join(
                f"</{tag}>" for tag in reversed(unclosed)
            )
            repairs.append("unclosed_tags")
            tokens = None  # html changed: re-lex inside the budget

        # Unfixable parse-level guards, on the (possibly repaired) html.
        try:
            with _parse_budget(
                config.parse_budget_seconds,
                warnings,
                force_soft=self.force_soft_budget,
            ):
                root = parse_token_stream(
                    tokens if tokens is not None else tokenize_html(html),
                    max_depth=config.max_dom_depth,
                )
        except HtmlLimitError as error:
            return self._reject(
                page, error.limit, str(error), error=error
            ), None, repairs, None
        except Exception as error:  # noqa: BLE001 - contain, never crash
            # The parser promises not to raise on malformed markup; if
            # it ever does, that page is exactly what quarantine is for.
            return self._reject(
                page, "parse_error", str(error), error=error
            ), None, repairs, None
        for table in root.find_all("table"):
            rows = len(table.find_all("tr"))
            if rows > config.max_table_rows:
                return self._reject(
                    page, "table_rows",
                    f"table has {rows} rows "
                    f"(max {config.max_table_rows})",
                ), None, repairs, None

        if html is not page.html:
            page = ProductPage(
                product_id=page.product_id,
                category=page.category,
                html=html,
                locale=page.locale,
            )
        return None, page, repairs, root

    def _reject(
        self,
        page: ProductPage,
        check: str,
        detail: str,
        byte_offset: int | None = None,
        error: Exception | None = None,
    ) -> QuarantineEntry:
        return QuarantineEntry(
            page_id=page.product_id,
            check=check,
            error=type(error).__name__ if error is not None else check,
            detail=detail,
            byte_offset=byte_offset,
        )
