"""Configuration dataclasses for the PAE pipeline.

Defaults follow the paper's experimental setting (Section VI): five
bootstrap iterations, CRF window features, four veto rules with a top-80%
unpopularity cut and a 30-character length cap, and per-iteration word2vec
retraining for semantic cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError


@dataclass(frozen=True, slots=True)
class SeedConfig:
    """Pre-processor settings (Section V-A).

    Attributes:
        aggregation_threshold: minimum Charron-style similarity score for
            two attribute names to be merged as redundant aliases.
        aggregation_damping: weight of the comparable-range-size penalty
            in the aggregation score (see ``aggregation.py``).
        min_attribute_pages: attribute names seen in fewer dictionary
            tables than this are discarded as noise before aggregation.
        min_value_page_frequency: a seed value not found in the query log
            is kept only if it occurs in at least this many pages.
        diversification_k: number of most-frequent PoS-tag sequences kept
            per attribute by the value-diversification module.
        diversification_n: number of most-frequent values adopted per kept
            PoS-tag sequence.
    """

    aggregation_threshold: float = 0.35
    aggregation_damping: float = 0.6
    min_attribute_pages: int = 3
    min_value_page_frequency: int = 3
    diversification_k: int = 4
    diversification_n: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.aggregation_threshold <= 1.0:
            raise ConfigError("aggregation_threshold must be in [0, 1]")
        if not 0.0 <= self.aggregation_damping <= 1.0:
            raise ConfigError("aggregation_damping must be in [0, 1]")
        if self.min_attribute_pages < 1:
            raise ConfigError("min_attribute_pages must be >= 1")
        if self.min_value_page_frequency < 1:
            raise ConfigError("min_value_page_frequency must be >= 1")
        if self.diversification_k < 0 or self.diversification_n < 0:
            raise ConfigError("diversification parameters must be >= 0")


@dataclass(frozen=True, slots=True)
class VetoConfig:
    """Non-semantic (syntactic) cleaning settings (Section V-C).

    The four veto rules of the paper: single-token symbols, markup tags,
    unpopular entities (keep the top share of entities per attribute,
    ranked by tagged-item count) and overlong values.
    """

    keep_top_share: float = 0.8
    max_value_chars: int = 30

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_top_share <= 1.0:
            raise ConfigError("keep_top_share must be in (0, 1]")
        if self.max_value_chars < 1:
            raise ConfigError("max_value_chars must be >= 1")


@dataclass(frozen=True, slots=True)
class SemanticConfig:
    """Semantic-drift cleaning settings (Section V-C).

    Attributes:
        core_size: ``n`` — values kept when iteratively pruning the least
            similar value to form an attribute's semantic core. ``0``
            disables pruning (paper §VIII-B explores unrestricted ``n``).
        accept_threshold: relative acceptance cut-off — a value is
            removed when its multiplicative similarity against the
            core falls below ``accept_threshold`` times the *median*
            core-member score (scale-robust; see semantic.py).
        embedding_dim: word2vec vector dimensionality.
        embedding_epochs: skip-gram training epochs per iteration.
        embedding_window: skip-gram context window.
        embedding_negatives: negative samples per positive pair.
        min_core_attribute_values: attributes with fewer distinct values
            than this skip semantic cleaning (too little geometry).
    """

    core_size: int = 10
    accept_threshold: float = 0.62
    embedding_dim: int = 16
    embedding_epochs: int = 12
    embedding_window: int = 3
    embedding_negatives: int = 4
    min_core_attribute_values: int = 3
    #: Resume each iteration's word2vec training from the previous
    #: iteration's vectors (deterministic, but a different — usually
    #: better-converged — optimisation start than cold random init).
    #: Off by default: a checkpoint-resumed run has no previous model
    #: in memory, and resume must stay bit-identical to uninterrupted.
    warm_start_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.core_size < 0:
            raise ConfigError("core_size must be >= 0 (0 disables pruning)")
        if not 0.0 <= self.accept_threshold <= 1.0:
            raise ConfigError("accept_threshold must be in [0, 1]")
        if self.embedding_dim < 2:
            raise ConfigError("embedding_dim must be >= 2")
        if self.embedding_epochs < 1:
            raise ConfigError("embedding_epochs must be >= 1")
        if self.embedding_window < 1:
            raise ConfigError("embedding_window must be >= 1")
        if self.embedding_negatives < 1:
            raise ConfigError("embedding_negatives must be >= 1")


#: Ingest policies: fail fast, fix what is fixable, or contain and go on.
INGEST_POLICIES = ("strict", "repair", "drop")


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Dirty-input gate settings (:mod:`repro.ingest`).

    Merchant pages arrive truncated, mojibake-ridden and occasionally
    hostile (megabyte blobs, pathological nesting). The gate validates
    every page before the pipeline sees it, under one of three policies:

    * ``"strict"`` — the first failing page raises
      :class:`~repro.errors.PageQuarantinedError` (CI / trusted data).
    * ``"repair"`` — fixable damage (truncation, unclosed tags, entity
      garbage, mojibake) is normalized in place; unfixable pages are
      quarantined and the run continues. The default.
    * ``"drop"`` — any failing page is quarantined, no repairs.

    Attributes:
        policy: one of :data:`INGEST_POLICIES`.
        enabled: False bypasses the gate entirely (measurement only).
        max_page_bytes: UTF-8 size above which a page is a "megapage"
            and unconditionally quarantined.
        max_dom_depth: maximum open-element nesting the parser accepts.
        max_table_rows: maximum ``<tr>`` rows in any one table.
        parse_budget_seconds: wall-clock budget for parsing one page.
            Enforced via SIGALRM on the main thread; worker threads
            (where ``signal`` raises ``ValueError``) degrade to a
            post-hoc wall-clock check counted as ``parse_budget_soft``.
            0 disables the budget.
        max_unclosed_tags: unclosed non-void elements tolerated at end
            of input before the page counts as structurally damaged.
        max_bad_entities: malformed entity references tolerated before
            the page counts as entity garbage.
    """

    policy: str = "repair"
    enabled: bool = True
    max_page_bytes: int = 1_000_000
    max_dom_depth: int = 100
    max_table_rows: int = 500
    parse_budget_seconds: float = 5.0
    max_unclosed_tags: int = 12
    max_bad_entities: int = 16

    def __post_init__(self) -> None:
        if self.policy not in INGEST_POLICIES:
            raise ConfigError(
                f"ingest policy must be one of {INGEST_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.max_page_bytes < 1:
            raise ConfigError("max_page_bytes must be >= 1")
        if self.max_dom_depth < 1:
            raise ConfigError("max_dom_depth must be >= 1")
        if self.max_table_rows < 1:
            raise ConfigError("max_table_rows must be >= 1")
        if self.parse_budget_seconds < 0:
            raise ConfigError("parse_budget_seconds must be >= 0")
        if self.max_unclosed_tags < 0:
            raise ConfigError("max_unclosed_tags must be >= 0")
        if self.max_bad_entities < 0:
            raise ConfigError("max_bad_entities must be >= 0")


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Online extraction service settings (:mod:`repro.serve`).

    The serve daemon routes every request through a robustness
    pipeline: admission control with load shedding, a strict ingest
    gate, per-request deadlines, micro-batched tagging, and a
    per-model circuit breaker with a graceful degradation ladder
    (active model → previous registry version → dictionary-only →
    fast-fail).

    Attributes:
        host: bind address.
        port: bind port (0 picks an ephemeral port).
        queue_capacity: maximum requests admitted concurrently
            (queued + in flight); excess is shed with a structured
            429 and a deterministic ``Retry-After``.
        deadline_seconds: default per-request wall-clock budget; a
            blown deadline returns a structured timeout, never a hung
            socket.
        max_deadline_seconds: cap on client-requested deadlines.
        batch_max_size: requests merged into one micro-batched tag
            call.
        batch_max_wait_seconds: how long the batcher waits for
            co-travellers after the first request arrives.
        breaker_threshold: consecutive model failures that trip the
            breaker one rung down the degradation ladder.
        breaker_cooldown_seconds: wait before a half-open probe tries
            the rung above again.
        drain_timeout_seconds: how long a hot-swap waits for the old
            version's in-flight requests to finish.
        default_locale: locale assumed for requests that omit one.
        ingest: gate settings for request payloads (strict policy —
            rejects are quarantined with a structured 4xx).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    queue_capacity: int = 32
    deadline_seconds: float = 5.0
    max_deadline_seconds: float = 30.0
    batch_max_size: int = 16
    batch_max_wait_seconds: float = 0.005
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 2.0
    drain_timeout_seconds: float = 10.0
    #: Soft RSS ceiling in MiB for the serve process (None = off).
    #: Under pressure admission control halves its effective capacity
    #: (sheds with the same structured 429) until RSS recovers.
    memory_budget_mb: int | None = None
    default_locale: str = "ja"
    ingest: IngestConfig = field(
        default_factory=lambda: IngestConfig(
            policy="strict", parse_budget_seconds=2.0
        )
    )

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError("port must be in [0, 65535]")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if self.deadline_seconds <= 0:
            raise ConfigError("deadline_seconds must be > 0")
        if self.max_deadline_seconds < self.deadline_seconds:
            raise ConfigError(
                "max_deadline_seconds must be >= deadline_seconds"
            )
        if self.batch_max_size < 1:
            raise ConfigError("batch_max_size must be >= 1")
        if self.batch_max_wait_seconds < 0:
            raise ConfigError("batch_max_wait_seconds must be >= 0")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_seconds < 0:
            raise ConfigError("breaker_cooldown_seconds must be >= 0")
        if self.drain_timeout_seconds < 0:
            raise ConfigError("drain_timeout_seconds must be >= 0")
        if self.memory_budget_mb is not None and self.memory_budget_mb < 1:
            raise ConfigError("memory_budget_mb must be >= 1 (or None)")


@dataclass(frozen=True, slots=True)
class HealthConfig:
    """Bootstrap iteration-health guardrails (circuit breaker).

    A poisoned corpus can make an iteration produce garbage that the
    next iteration trains on — drift compounding instead of converging.
    The breaker inspects every completed iteration and, when it looks
    pathological, halts the loop with the *last healthy* iteration's
    results instead of folding the bad cycle into the dataset.

    Attributes:
        enable_circuit_breaker: False disables the guardrail.
        max_rejection_rate: trip when the cleaning stages reject more
            than this share of an iteration's candidate extractions
            (semantic-drift explosion). Lax by default — healthy runs
            reject well under half.
        min_rejection_sample: rejection-rate checks need at least this
            many candidates (tiny iterations are noise, not signal).
        yield_collapse_ratio: trip when an iteration's candidate count
            falls below this fraction of the previous iteration's
            (yield collapse).
        min_yield_sample: collapse checks require the previous
            iteration to have produced at least this many candidates.
    """

    enable_circuit_breaker: bool = True
    max_rejection_rate: float = 0.95
    min_rejection_sample: int = 20
    yield_collapse_ratio: float = 0.02
    min_yield_sample: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.max_rejection_rate <= 1.0:
            raise ConfigError("max_rejection_rate must be in (0, 1]")
        if self.min_rejection_sample < 1:
            raise ConfigError("min_rejection_sample must be >= 1")
        if not 0.0 <= self.yield_collapse_ratio < 1.0:
            raise ConfigError("yield_collapse_ratio must be in [0, 1)")
        if self.min_yield_sample < 1:
            raise ConfigError("min_yield_sample must be >= 1")


@dataclass(frozen=True, slots=True)
class CrfConfig:
    """CRF tagger settings (Section VI-D).

    The paper uses crfsuite defaults: L-BFGS with L1+L2 regularisation,
    and window features around each token.
    """

    window: int = 2
    l1: float = 0.05
    l2: float = 0.05
    max_iterations: int = 60
    min_feature_count: int = 1
    #: Sentences per padded Viterbi batch at tag time. Sentences are
    #: length-bucketed first, so each batch is nearly rectangular;
    #: decoding is per-sentence independent, making any batch size
    #: output-identical to one monolithic batch.
    tag_batch_size: int = 64
    #: ``"lbfgs"`` (exact, the paper's crfsuite setting) or ``"sgd"``
    #: (opt-in minibatch Adagrad fast mode — deterministic but
    #: approximate; see repro.ml.crf.train).
    trainer: str = "lbfgs"
    #: Unique sentences per training E-step bucket. Output-identical
    #: for the exact trainer at any value (canonical reductions);
    #: smaller buckets only matter for parallel E-step fan-out.
    train_batch_size: int = 512
    #: Worker processes for the per-bucket E-step (1 = serial; any
    #: count is output-identical — the merge is deterministic).
    estep_workers: int = 1
    #: Bucket size (= minibatch size) for ``trainer="sgd"``.
    sgd_batch_size: int = 32
    #: Adagrad step size for ``trainer="sgd"``.
    sgd_learning_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ConfigError("window must be >= 0")
        if self.l1 < 0 or self.l2 < 0:
            raise ConfigError("regularisation strengths must be >= 0")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.tag_batch_size < 1:
            raise ConfigError("tag_batch_size must be >= 1")
        if self.trainer not in ("lbfgs", "sgd"):
            raise ConfigError("trainer must be 'lbfgs' or 'sgd'")
        if self.train_batch_size < 1:
            raise ConfigError("train_batch_size must be >= 1")
        if self.estep_workers < 1:
            raise ConfigError("estep_workers must be >= 1")
        if self.sgd_batch_size < 1:
            raise ConfigError("sgd_batch_size must be >= 1")
        if self.sgd_learning_rate <= 0:
            raise ConfigError("sgd_learning_rate must be > 0")


@dataclass(frozen=True, slots=True)
class LstmConfig:
    """BiLSTM tagger settings (NeuroNER-style, Section VI-D)."""

    epochs: int = 2
    char_dim: int = 12
    char_hidden: int = 12
    word_dim: int = 24
    word_hidden: int = 24
    # Tuned for corpora two orders of magnitude smaller than the
    # paper's: the same 2-vs-10-epoch contrast needs a larger step.
    dropout: float = 0.2
    learning_rate: float = 0.45
    seed: int = 13

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError("dropout must be in [0, 1)")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be > 0")
        for name in ("char_dim", "char_hidden", "word_dim", "word_hidden"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Top-level pipeline configuration (Figure 1 parameters).

    Attributes:
        iterations: ``N`` — bootstrap cycles (paper: 5).
        tagger: ``"crf"``, ``"lstm"``, or ``"ensemble"`` (the §IX
            future-work CRF+LSTM combination from
            :mod:`repro.extensions.ensemble`).
        ensemble_policy: span-combination policy for the ensemble
            backend — ``"agreement"`` (precision-first) or ``"union"``
            (coverage-first).
        enable_syntactic_cleaning: apply the four veto rules.
        enable_semantic_cleaning: apply the word2vec drift filter.
        enable_diversification: apply seed value diversification.
        min_confidence: extension knob — drop extractions whose CRF
            posterior span confidence falls below this (0 disables; only
            meaningful with ``tagger="crf"``). A principled version of
            the candidate-scoring idea the paper cites against drift.
        seed: RNG seed for every stochastic component.
        stage_retries: extra attempts per failed pipeline stage before
            the failure escalates (optional cleaning stages degrade to
            a counted skip instead). Stage bodies are pure functions of
            their inputs, so retries cannot change a successful run's
            output.
    """

    iterations: int = 5
    tagger: str = "crf"
    ensemble_policy: str = "agreement"
    enable_syntactic_cleaning: bool = True
    enable_semantic_cleaning: bool = True
    enable_diversification: bool = True
    min_confidence: float = 0.0
    seed: int = 7
    stage_retries: int = 1
    #: Cap on seed-labelled sentences kept in the training dataset
    #: (first N in corpus order; None = unbounded). At paper scale the
    #: folded dataset is the last unbounded per-iteration structure —
    #: this knob bounds it deterministically, applied identically by
    #: the monolithic and sharded paths so they stay bit-identical.
    max_labeled_sentences: int | None = None
    #: Memoize feature extraction across bootstrap iterations (see
    #: :mod:`repro.perf.cache`). Output-invisible; off only to measure
    #: the uncached baseline.
    enable_feature_cache: bool = True
    #: Reuse shard-prep artifacts (gate + tokenize + candidate mining)
    #: across runs of the same source and gate/tokenizer config (see
    #: :mod:`repro.perf.prep_cache`). Output-invisible — a cache hit
    #: replays the recorded per-page outcomes through the same
    #: deterministic merge; off only to measure the uncached baseline.
    enable_prep_cache: bool = True
    #: Soft RSS ceiling in MiB for the sharded path (None = no
    #: governor). Crossing it throttles shard fan-out and tag batches
    #: and releases tokenizer memos — counted backpressure, never an
    #: abort. Output-invisible: throttles change scheduling, not
    #: results.
    memory_budget_mb: int | None = None
    #: Worker processes for the supervised shard pool (None = derive
    #: from visible CPUs). Explicit ``shard_workers`` on
    #: :class:`~repro.core.sharded.ShardedBootstrapper` wins over this.
    pool_workers: int | None = None
    seed_config: SeedConfig = field(default_factory=SeedConfig)
    veto: VetoConfig = field(default_factory=VetoConfig)
    semantic: SemanticConfig = field(default_factory=SemanticConfig)
    crf: CrfConfig = field(default_factory=CrfConfig)
    lstm: LstmConfig = field(default_factory=LstmConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    health: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if self.tagger not in ("crf", "lstm", "ensemble"):
            raise ConfigError(
                "tagger must be 'crf', 'lstm' or 'ensemble'"
            )
        if self.ensemble_policy not in ("agreement", "union"):
            raise ConfigError(
                "ensemble_policy must be 'agreement' or 'union'"
            )
        if not 0.0 <= self.min_confidence < 1.0:
            raise ConfigError("min_confidence must be in [0, 1)")
        if self.stage_retries < 0:
            raise ConfigError("stage_retries must be >= 0")
        if (
            self.max_labeled_sentences is not None
            and self.max_labeled_sentences < 1
        ):
            raise ConfigError(
                "max_labeled_sentences must be >= 1 (or None)"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb < 1:
            raise ConfigError("memory_budget_mb must be >= 1 (or None)")
        if self.pool_workers is not None and self.pool_workers < 1:
            raise ConfigError("pool_workers must be >= 1 (or None)")

    def without_cleaning(self) -> "PipelineConfig":
        """A copy with both cleaning stages disabled."""
        return replace(
            self,
            enable_syntactic_cleaning=False,
            enable_semantic_cleaning=False,
        )

    def with_tagger(self, tagger: str) -> "PipelineConfig":
        """A copy using a different tagger backend."""
        return replace(self, tagger=tagger)
