"""Legacy setuptools shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs cannot build; this shim keeps
``pip install -e . --no-use-pep517 --no-build-isolation`` working.
"""
from setuptools import setup

setup()
