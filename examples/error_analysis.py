"""Qualitative error analysis — the paper's Section VIII, live.

Buckets every system triple against the generator's ground truth and
prints representative examples of each error class the paper discusses:
secondary-product mentions and negations (incorrect), value
disagreements such as mangled decimals or confused sibling attributes
(maybe incorrect), and extractions with no basis on the page
(spurious).

Run:  python examples/error_analysis.py
"""

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import build_truth_sample, error_buckets, precision


def main() -> None:
    dataset = Marketplace(seed=7).generate("digital_cameras", 300)
    truth = build_truth_sample(dataset)
    result = PAEPipeline(PipelineConfig(iterations=3)).run(
        dataset.product_pages, dataset.query_log
    )
    breakdown = precision(result.triples, truth)
    print(
        f"precision {100 * breakdown.precision:.1f}% — "
        f"{breakdown.correct} correct, {breakdown.incorrect} incorrect, "
        f"{breakdown.maybe_incorrect} maybe-incorrect, "
        f"{breakdown.spurious} spurious\n"
    )

    buckets = error_buckets(result.triples, truth)
    labels = {
        "incorrect": "incorrect (negation/secondary/junk/variant)",
        "maybe_incorrect": "maybe incorrect (value disagrees)",
        "spurious": "spurious (nothing stated)",
    }
    for bucket_name, label in labels.items():
        triples = sorted(getattr(buckets, bucket_name), key=str)
        print(f"## {label} — {len(triples)} triples")
        for triple in triples[:4]:
            stated = [
                t.value
                for t in truth.correct
                if t.product_id == triple.product_id
                and t.attribute == triple.attribute
            ]
            context = f" (page states: {stated[0]})" if stated else ""
            print(f"   {triple}{context}")
        print()

    print("error concentration per attribute:")
    for attribute, counts in sorted(
        buckets.errors_by_attribute().items()
    ):
        dominant = buckets.dominant_error_values(attribute, limit=2)
        print(f"   {attribute}: {dict(counts)} dominant={dominant}")
    print(
        f"\nworst attribute carries "
        f"{100 * buckets.concentration():.0f}% of all errors — the "
        "paper's\n\"few errors that affect many items\" pattern."
    )


if __name__ == "__main__":
    main()
