"""Quickstart: extract product attribute-value triples end to end.

Generates a synthetic Digital Cameras catalog (the substitute for the
paper's proprietary Rakuten data — see DESIGN.md §1), runs the full
bootstrapped pipeline (seed from dictionary tables → CRF tagging →
veto + semantic cleaning, 3 cycles) and evaluates precision/coverage
against the generator's ground truth.

Run:  python examples/quickstart.py
"""

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import build_truth_sample, precision
from repro.evaluation.report import iteration_report


def main() -> None:
    # 1. A category dataset: product pages + user query log + truth.
    dataset = Marketplace(seed=42).generate("digital_cameras", 250)
    print(
        f"Generated {len(dataset)} product pages, "
        f"{len(dataset.correct_triples)} true stated triples."
    )

    # 2. The paper's reference configuration (CRF + full cleaning).
    pipeline = PAEPipeline(PipelineConfig(iterations=3))
    result = pipeline.run(dataset.product_pages, dataset.query_log)

    # 3. Inspect what came out.
    print(f"\nDiscovered attributes: {', '.join(result.attributes)}")
    print("Sample extractions:")
    for triple in sorted(result.triples, key=str)[:8]:
        print(f"  {triple}")

    # 4. Evaluate with the paper's metrics.
    truth = build_truth_sample(dataset)
    breakdown = precision(result.triples, truth)
    print(
        f"\nFinal precision: {100 * breakdown.precision:.1f}%  "
        f"({breakdown.correct} correct / {breakdown.judged} judged)"
    )
    print(f"Product coverage: {100 * result.coverage():.1f}%")
    print("\nPer-iteration view (iteration 0 = seed only):")
    print(iteration_report(result.bootstrap, truth, len(dataset)))


if __name__ == "__main__":
    main()
