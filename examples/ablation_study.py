"""Ablation study: what each module buys (the Table IV experiment).

Runs the Garden category — the noisiest of the paper's eight — with
modules knocked out one at a time: semantic cleaning, both cleaning
stages, and value diversification. Garden is where cleaning matters
most (small, noisy seed).

Run:  python examples/ablation_study.py
"""

from dataclasses import replace

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import build_truth_sample, precision
from repro.evaluation.report import format_table


def main() -> None:
    dataset = Marketplace(seed=7).generate("garden", 300)
    truth = build_truth_sample(dataset)
    pages = list(dataset.product_pages)

    base = PipelineConfig(iterations=3)
    configurations = {
        "full system": base,
        "- semantic cleaning": replace(
            base, enable_semantic_cleaning=False
        ),
        "- semantic - syntactic": base.without_cleaning(),
        "- diversification": replace(
            base, enable_diversification=False
        ),
    }

    rows = []
    for label, config in configurations.items():
        result = PAEPipeline(config).run(pages, dataset.query_log)
        breakdown = precision(result.triples, truth)
        rows.append(
            [
                label,
                100 * breakdown.precision,
                100 * result.coverage(),
                len(result.triples),
            ]
        )
    print(
        format_table(
            ["configuration", "precision%", "coverage%", "#triples"],
            rows,
            title="Table IV style — module ablations on Garden "
            "(3 iterations)",
        )
    )
    print(
        "\nExpected shapes (paper §VII-D): every knockout costs "
        "precision;\nremoving cleaning buys coverage the business "
        "cannot afford."
    )


if __name__ == "__main__":
    main()
