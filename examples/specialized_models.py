"""Specialized models: trading precision for attribute coverage.

Section VIII-D: a single global model under-covers hard attributes; a
model trained on a *subset* of attributes multiplies their coverage,
while fully per-attribute models can lose precision (the paper's power
supply type drops from >90% to <70%). This example reruns that study
on the Vacuum Cleaner category.

Run:  python examples/specialized_models.py
"""

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import (
    attribute_coverage,
    build_truth_sample,
    precision,
)
from repro.evaluation.report import format_table

STUDIED = ("taipu", "shujin hoshiki", "dengen hoshiki")


def main() -> None:
    dataset = Marketplace(seed=7).generate("vacuum_cleaner", 220)
    truth = build_truth_sample(dataset)
    pages = list(dataset.product_pages)
    config = PipelineConfig(iterations=3)

    global_run = PAEPipeline(config).run(pages, dataset.query_log)
    global_coverage = attribute_coverage(
        global_run.triples, len(dataset), dataset.alias_map
    )

    specialized_run = PAEPipeline(
        config, attribute_subset=STUDIED
    ).run(pages, dataset.query_log)
    specialized_coverage = attribute_coverage(
        specialized_run.triples, len(dataset), dataset.alias_map
    )

    rows = []
    for attribute in STUDIED:
        rows.append(
            [
                attribute,
                100 * global_coverage.get(attribute, 0.0),
                100 * specialized_coverage.get(attribute, 0.0),
            ]
        )
    print(
        format_table(
            ["attribute", "global cov.%", "specialized cov.%"],
            rows,
            title="Figure 8 style — specialization multiplies coverage",
        )
    )

    specialized_precision = precision(specialized_run.triples, truth)
    global_precision = precision(global_run.triples, truth)
    print(
        f"\nGlobal-model precision:      "
        f"{100 * global_precision.precision:.1f}%"
    )
    print(
        f"Specialized-model precision: "
        f"{100 * specialized_precision.precision:.1f}%"
    )
    print(
        "\nThe paper leaves *optimal* attribute partitioning as future "
        "work; try other subsets via PAEPipeline(attribute_subset=...)."
    )


if __name__ == "__main__":
    main()
