"""Language independence: the same pipeline on Japanese and German.

The paper's architecture is language-independent except for the
tokenizer and PoS tagger (Section V); this example runs identical
configurations over a Japanese and a German category and compares the
outcomes — reproducing the §VII-B observation that "the results
obtained for the two languages are comparable".

Run:  python examples/multilingual_catalog.py
"""

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import build_truth_sample, precision
from repro.evaluation.report import format_table


def run_category(name: str, products: int):
    dataset = Marketplace(seed=7).generate(name, products)
    pipeline = PAEPipeline(PipelineConfig(iterations=3))
    result = pipeline.run(dataset.product_pages, dataset.query_log)
    truth = build_truth_sample(dataset)
    breakdown = precision(result.triples, truth)
    return [
        name,
        dataset.locale,
        len(result.triples),
        100 * breakdown.precision,
        100 * result.coverage(),
    ]


def main() -> None:
    rows = [
        run_category("vacuum_cleaner", 220),   # Japanese
        run_category("ladies_bags", 220),      # Japanese
        run_category("mailbox", 120),          # German
        run_category("coffee_machines", 120),  # German
    ]
    print(
        format_table(
            ["category", "locale", "#triples", "precision%", "coverage%"],
            rows,
            title="Same pipeline, two languages (CRF + cleaning, "
            "3 iterations)",
        )
    )
    ja = [row for row in rows if row[1] == "ja"]
    de = [row for row in rows if row[1] == "de"]
    ja_precision = sum(row[3] for row in ja) / len(ja)
    de_precision = sum(row[3] for row in de) / len(de)
    print(
        f"\nMean precision — ja: {ja_precision:.1f}%, "
        f"de: {de_precision:.1f}% (comparable, as in §VII-B)."
    )


if __name__ == "__main__":
    main()
